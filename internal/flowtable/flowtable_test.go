package flowtable

import (
	"fmt"
	"testing"
	"testing/quick"

	"flowrecon/internal/flows"
	"flowrecon/internal/rules"
)

func testRules(t *testing.T) *rules.Set {
	t.Helper()
	// Figure 3 of the paper: rule1 covers f1; rule2 covers f1,f2 with
	// lower priority; rule3 covers f3.
	s, err := rules.NewSet([]rules.Rule{
		{Name: "rule1", Cover: flows.SetOf(0), Priority: 3, Timeout: 4},
		{Name: "rule2", Cover: flows.SetOf(0, 1), Priority: 2, Timeout: 10},
		{Name: "rule3", Cover: flows.SetOf(2), Priority: 1, Timeout: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	rs := testRules(t)
	if _, err := New(rs, 0, 1); err == nil {
		t.Fatal("capacity 0 accepted")
	}
	if _, err := New(rs, 1, 0); err == nil {
		t.Fatal("zero step accepted")
	}
}

func TestTableMissInstallHit(t *testing.T) {
	rs := testRules(t)
	tbl, err := New(rs, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tbl.Lookup(0, 0); ok {
		t.Fatal("hit in empty table")
	}
	tbl.Install(0, 0)
	if id, ok := tbl.Lookup(0, 1); !ok || id != 0 {
		t.Fatalf("lookup after install: %d %v", id, ok)
	}
	if !tbl.Contains(0, 1) || tbl.Len(1) != 1 {
		t.Fatal("contains/len wrong")
	}
}

func TestTableIdleTimeoutRefresh(t *testing.T) {
	rs := testRules(t)
	tbl, err := New(rs, 2, 1) // rule1 idle timeout = 4s
	if err != nil {
		t.Fatal(err)
	}
	tbl.Install(0, 0)
	// A match at t=3 refreshes the idle timer.
	if _, ok := tbl.Lookup(0, 3); !ok {
		t.Fatal("miss at t=3")
	}
	if !tbl.Contains(0, 6.5) {
		t.Fatal("expired despite refresh (expiry should be 3+4=7)")
	}
	if tbl.Contains(0, 7) {
		t.Fatal("still cached at expiry")
	}
}

func TestTableHardTimeoutNoRefresh(t *testing.T) {
	rs, err := rules.NewSet([]rules.Rule{
		{Cover: flows.SetOf(0), Priority: 1, Timeout: 4, Kind: rules.HardTimeout},
	})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := New(rs, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	tbl.Install(0, 0)
	tbl.Lookup(0, 3) // match must NOT extend a hard timeout
	if tbl.Contains(0, 4) {
		t.Fatal("hard-timeout rule survived past install+timeout")
	}
}

func TestTableEvictsShortestRemaining(t *testing.T) {
	rs := testRules(t)
	tbl, err := New(rs, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	var removed []int
	var reasons []EvictionReason
	tbl.OnRemove = func(id int, reason EvictionReason, _ float64) {
		removed = append(removed, id)
		reasons = append(reasons, reason)
	}
	tbl.Install(0, 0) // rule1: expires at 4
	tbl.Install(2, 0) // rule3: expires at 7
	tbl.Install(1, 1) // table full: evict rule1 (remaining 3 < 6)
	if tbl.Contains(0, 1) {
		t.Fatal("rule1 should have been evicted")
	}
	if !tbl.Contains(1, 1) || !tbl.Contains(2, 1) {
		t.Fatal("rule2/rule3 should be cached")
	}
	if len(removed) != 1 || removed[0] != 0 || reasons[0] != ReasonEvicted {
		t.Fatalf("removals = %v %v", removed, reasons)
	}
}

func TestTableExpireCallback(t *testing.T) {
	rs := testRules(t)
	tbl, err := New(rs, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	var reasons []EvictionReason
	tbl.OnRemove = func(_ int, reason EvictionReason, _ float64) { reasons = append(reasons, reason) }
	tbl.Install(0, 0)
	tbl.Len(100)
	if len(reasons) != 1 || reasons[0] != ReasonExpired {
		t.Fatalf("reasons = %v", reasons)
	}
}

func TestTableReinstallRefreshes(t *testing.T) {
	rs := testRules(t)
	tbl, err := New(rs, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	tbl.Install(0, 0)
	tbl.Install(0, 3)
	if rem, ok := tbl.Remaining(0, 3); !ok || rem != 4 {
		t.Fatalf("remaining = %v %v", rem, ok)
	}
	if tbl.Len(3) != 1 {
		t.Fatal("duplicate entry after reinstall")
	}
}

func TestTablePriorityMatch(t *testing.T) {
	rs := testRules(t)
	tbl, err := New(rs, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	tbl.Install(1, 0) // rule2 covers f1 too, lower priority
	tbl.Install(0, 0) // rule1 higher priority for f1
	if id, ok := tbl.Lookup(0, 1); !ok || id != 0 {
		t.Fatalf("f1 matched rule %d, want rule1 (0)", id)
	}
	if id, ok := tbl.Lookup(1, 1); !ok || id != 1 {
		t.Fatalf("f2 matched rule %d, want rule2 (1)", id)
	}
}

func TestTableRemove(t *testing.T) {
	rs := testRules(t)
	tbl, err := New(rs, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	tbl.Install(0, 0)
	if !tbl.Remove(0, 1) {
		t.Fatal("remove reported not cached")
	}
	if tbl.Remove(0, 1) {
		t.Fatal("double remove reported cached")
	}
}

func TestTableCached(t *testing.T) {
	rs := testRules(t)
	tbl, err := New(rs, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	tbl.Install(2, 0)
	tbl.Install(0, 0)
	got := tbl.Cached(1)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("cached = %v", got)
	}
	if tbl.Capacity() != 3 {
		t.Fatal("capacity accessor")
	}
}

// --- StepTable: the Figure 3 walkthrough ---

func TestStepTableFigure3(t *testing.T) {
	rs := testRules(t)
	st := NewStepTable(rs, 2)

	// f3 arrives: rule3 installed with clock 7.
	if id, hit, ok := st.StepArrival(2); !ok || hit || id != 2 {
		t.Fatalf("f3 arrival: id=%d hit=%v ok=%v", id, hit, ok)
	}
	// f1 arrives: rule1 (highest covering) installed with clock 4; rule3
	// decrements to 6. State becomes [(rule1:4), (rule3:6)].
	if id, hit, _ := st.StepArrival(0); hit || id != 0 {
		t.Fatalf("f1 arrival: id=%d hit=%v", id, hit)
	}
	want := []StepEntry{{RuleID: 0, Exp: 4}, {RuleID: 2, Exp: 6}}
	if got := st.Entries(); !entriesEqual(got, want) {
		t.Fatalf("state = %v, want %v", got, want)
	}

	// Three nulls: [(rule1:1), (rule3:3)].
	st.StepNull()
	st.StepNull()
	st.StepNull()
	// f2 arrives: no covering rule cached (rule1 covers only f1).
	// rule2 installs; cache full → evict rule1 (smallest remaining 1 < 3).
	if id, hit, _ := st.StepArrival(1); hit || id != 1 {
		t.Fatalf("f2 arrival: id=%d hit=%v", id, hit)
	}
	want = []StepEntry{{RuleID: 1, Exp: 10}, {RuleID: 2, Exp: 2}}
	if got := st.Entries(); !entriesEqual(got, want) {
		t.Fatalf("state = %v, want %v", got, want)
	}

	// f1 now hits rule2 (only cached cover): clock resets to 10, moves to
	// front; rule3 decrements.
	if id, hit, _ := st.StepArrival(0); !hit || id != 1 {
		t.Fatalf("f1 hit: id=%d hit=%v", id, hit)
	}
	want = []StepEntry{{RuleID: 1, Exp: 10}, {RuleID: 2, Exp: 1}}
	if got := st.Entries(); !entriesEqual(got, want) {
		t.Fatalf("state = %v, want %v", got, want)
	}
}

func TestStepTableTimeout(t *testing.T) {
	rs := testRules(t)
	st := NewStepTable(rs, 2)
	st.StepArrival(2) // rule3:7
	st.StepArrival(0) // rule1:4, rule3:6
	for i := 0; i < 4; i++ {
		if st.PendingTimeout() {
			t.Fatalf("premature timeout at null %d", i)
		}
		st.StepNull()
	}
	// rule1 clock is now 0.
	if !st.PendingTimeout() {
		t.Fatal("timeout not pending")
	}
	if !st.StepTimeout() {
		t.Fatal("StepTimeout returned false")
	}
	want := []StepEntry{{RuleID: 2, Exp: 2}}
	if got := st.Entries(); !entriesEqual(got, want) {
		t.Fatalf("state = %v, want %v", got, want)
	}
	if st.StepTimeout() {
		t.Fatal("timeout fired with no zero clock")
	}
}

func TestStepTableTimeoutRemovesDeepest(t *testing.T) {
	rs, err := rules.NewSet([]rules.Rule{
		{Cover: flows.SetOf(0), Priority: 2, Timeout: 1},
		{Cover: flows.SetOf(1), Priority: 1, Timeout: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := NewStepTable(rs, 2)
	st.StepArrival(0) // [rule0:1]
	st.StepArrival(1) // [rule1:1, rule0:0]
	// Both will reach 0; paper removes the deepest zero first.
	if !st.StepTimeout() {
		t.Fatal("no timeout")
	}
	want := []StepEntry{{RuleID: 1, Exp: 1}}
	if got := st.Entries(); !entriesEqual(got, want) {
		t.Fatalf("state = %v, want %v", got, want)
	}
}

func TestStepTableHardTimeoutDecrementsOnHit(t *testing.T) {
	rs, err := rules.NewSet([]rules.Rule{
		{Cover: flows.SetOf(0), Priority: 1, Timeout: 3, Kind: rules.HardTimeout},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := NewStepTable(rs, 1)
	st.StepArrival(0) // clock 3
	if _, hit, _ := st.StepArrival(0); !hit {
		t.Fatal("expected hit")
	}
	want := []StepEntry{{RuleID: 0, Exp: 2}}
	if got := st.Entries(); !entriesEqual(got, want) {
		t.Fatalf("state = %v, want %v (hard timeout must not reset)", got, want)
	}
}

func TestStepTableUncoveredFlow(t *testing.T) {
	rs := testRules(t)
	st := NewStepTable(rs, 2)
	st.StepArrival(2)
	if _, _, ok := st.StepArrival(9); ok {
		t.Fatal("uncovered flow reported covered")
	}
	// Clocks must still have decremented (the step elapsed).
	want := []StepEntry{{RuleID: 2, Exp: 6}}
	if got := st.Entries(); !entriesEqual(got, want) {
		t.Fatalf("state = %v, want %v", got, want)
	}
}

func TestStepTableKeyAndSets(t *testing.T) {
	rs := testRules(t)
	st := NewStepTable(rs, 2)
	if st.Key() != "" {
		t.Fatalf("empty key = %q", st.Key())
	}
	st.StepArrival(2)
	st.StepArrival(0)
	if st.Key() != "0:4|2:6" {
		t.Fatalf("key = %q", st.Key())
	}
	if !st.Contains(0) || !st.Contains(2) || st.Contains(1) {
		t.Fatal("contains wrong")
	}
	cs := st.CachedSet()
	if !cs.Equal(flows.SetOf(0, 2)) {
		t.Fatalf("cached set = %v", cs)
	}
}

func entriesEqual(a, b []StepEntry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestTableStats(t *testing.T) {
	rs := testRules(t)
	tbl, err := New(rs, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	tbl.Lookup(0, 0) // miss
	tbl.Install(0, 0)
	tbl.Lookup(0, 1)  // hit on rule0
	tbl.Install(2, 1) // capacity 1: evicts rule0
	tbl.Lookup(2, 10) // rule2 (timeout 7s) expired by t=10: miss + expiration
	st := tbl.Stats()
	if st.Lookups != 3 || st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("lookup stats = %+v", st)
	}
	if st.Installs != 2 || st.Evictions != 1 || st.Expirations != 1 {
		t.Fatalf("mutation stats = %+v", st)
	}
	if st.MatchesByRule[0] != 1 || st.MatchesByRule[2] != 0 {
		t.Fatalf("per-rule stats = %v", st.MatchesByRule)
	}
	// Snapshot must be a copy.
	st.MatchesByRule[0] = 99
	if tbl.Stats().MatchesByRule[0] == 99 {
		t.Fatal("stats alias internal state")
	}
}

// TestStepTablePropertyInvariants drives the step table with random event
// sequences and checks the §IV-A state invariants after every step: at
// most `capacity` entries, no duplicate rules, and clocks within [0, t_j].
func TestStepTablePropertyInvariants(t *testing.T) {
	rs := testRules(t)
	check := func(st *StepTable) error {
		seen := map[int]bool{}
		entries := st.Entries()
		if len(entries) > 2 {
			return fmt.Errorf("over capacity: %v", entries)
		}
		for _, e := range entries {
			if seen[e.RuleID] {
				return fmt.Errorf("duplicate rule: %v", entries)
			}
			seen[e.RuleID] = true
			if e.Exp < 0 || e.Exp > rs.Rule(e.RuleID).Timeout {
				return fmt.Errorf("clock out of range: %v", entries)
			}
		}
		return nil
	}
	f := func(events []uint8) bool {
		st := NewStepTable(rs, 2)
		for _, ev := range events {
			if st.PendingTimeout() {
				st.StepTimeout()
			} else if ev%4 == 3 {
				st.StepNull()
			} else {
				st.StepArrival(flows.ID(ev % 4)) // includes uncovered flow 3
			}
			if err := check(st); err != nil {
				t.Log(err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestTablePropertyCapacity does the same for the continuous-time table.
func TestTablePropertyCapacity(t *testing.T) {
	rs := testRules(t)
	f := func(events []uint8) bool {
		tbl, err := New(rs, 2, 1)
		if err != nil {
			return false
		}
		now := 0.0
		for _, ev := range events {
			now += float64(ev%7) * 0.3
			fid := flows.ID(ev % 4)
			if _, hit := tbl.Lookup(fid, now); !hit {
				if j, covered := rs.HighestCovering(fid); covered {
					tbl.Install(j, now)
				}
			}
			if tbl.Len(now) > 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
