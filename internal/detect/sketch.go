package detect

import "math"

// The streaming primitives of the detector: a fixed log-bucket histogram
// sketch for timing observations (RTTs, inter-arrival gaps) and a
// ring-bucket sliding-window counter for probe rates. Both are sized at
// construction, update with pure arithmetic, and allocate nothing on the
// observation path — the properties that let the detector ride the
// controller hot path at line rate ("Reinventing NetFlow for OpenFlow
// SDN" fixes that bar: flow-level measurement must be cheap enough to
// run inline).

// sketchBuckets is the fixed bucket count of a Sketch: 2 buckets per
// octave over 24 octaves starting at sketchMin.
const (
	sketchBuckets    = 48
	sketchPerOctave  = 2
	sketchMin        = 1e-3 // smallest distinguishable value (1 µs in ms units, 1 ms in s units)
	sketchUnderflow  = 0    // values below sketchMin land here
	sketchOverflowIx = sketchBuckets - 1
)

// Sketch is a compact online histogram over positive values with
// logarithmic buckets (2 per octave): relative error is bounded by the
// octave split everywhere in the 7-decade range, the footprint is fixed
// at construction, Observe is allocation-free, and two sketches merge by
// bucket-wise addition — which is how per-trial detector replicas fold
// into one session view.
type Sketch struct {
	counts [sketchBuckets]uint32
	n      uint64
	sum    float64
}

// sketchBucket maps a value to its bucket index.
func sketchBucket(v float64) int {
	if !(v > sketchMin) { // catches NaN, zero, negatives, and underflow
		return sketchUnderflow
	}
	ix := int(sketchPerOctave * math.Log2(v/sketchMin))
	if ix < 0 {
		return sketchUnderflow
	}
	if ix > sketchOverflowIx {
		return sketchOverflowIx
	}
	return ix
}

// sketchValue returns the geometric midpoint of bucket ix, the value a
// quantile estimate reports for mass in that bucket.
func sketchValue(ix int) float64 {
	lo := sketchMin * math.Pow(2, float64(ix)/sketchPerOctave)
	hi := sketchMin * math.Pow(2, float64(ix+1)/sketchPerOctave)
	return math.Sqrt(lo * hi)
}

// Observe folds one value into the sketch. NaN and non-positive values
// are counted in the underflow bucket (they carry no timing information
// but must not desynchronize N from the per-source observation count).
func (s *Sketch) Observe(v float64) {
	s.counts[sketchBucket(v)]++
	s.n++
	if v > 0 && !math.IsNaN(v) && !math.IsInf(v, 0) {
		s.sum += v
	}
}

// N returns the number of observed values.
func (s *Sketch) N() uint64 { return s.n }

// Mean returns the exact running mean (0 with no observations).
func (s *Sketch) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Quantile returns the approximate q-quantile (q in [0,1]); 0 with no
// observations. The estimate is the geometric midpoint of the bucket
// holding the q-th observation.
func (s *Sketch) Quantile(q float64) float64 {
	if s.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.n-1))
	var seen uint64
	for ix, c := range s.counts {
		seen += uint64(c)
		if seen > rank {
			if ix == sketchUnderflow {
				return 0
			}
			return sketchValue(ix)
		}
	}
	return sketchValue(sketchOverflowIx)
}

// Merge adds other's buckets into s.
func (s *Sketch) Merge(other *Sketch) {
	for i := range s.counts {
		s.counts[i] += other.counts[i]
	}
	s.n += other.n
	s.sum += other.sum
}

// rateWindow is a sliding-window event counter: the window is split into
// a ring of equal-width buckets, the bucket under the current time
// advances (zeroing skipped buckets) as observations arrive, and the
// window count is the running sum of live buckets. Rotation and count
// are O(buckets) worst case, O(1) amortized, and allocation-free after
// construction.
type rateWindow struct {
	counts []uint32
	width  float64 // bucket width in seconds
	cur    int     // ring index of the bucket containing curStart
	start  float64 // start time of the current bucket
	total  uint32  // sum of counts
	primed bool
}

func newRateWindow(windowSec float64, buckets int) rateWindow {
	return rateWindow{counts: make([]uint32, buckets), width: windowSec / float64(buckets)}
}

// advance rotates the ring forward so the current bucket covers t.
// Out-of-order times earlier than the current bucket are credited to the
// current bucket (the stream is near-monotone on every substrate).
func (w *rateWindow) advance(t float64) {
	if !w.primed {
		w.primed = true
		w.start = t
		return
	}
	steps := int((t - w.start) / w.width)
	if steps <= 0 {
		return
	}
	if steps >= len(w.counts) {
		// The whole window elapsed: clear everything.
		for i := range w.counts {
			w.counts[i] = 0
		}
		w.total = 0
		w.cur = 0
		w.start = t
		return
	}
	for i := 0; i < steps; i++ {
		w.cur++
		if w.cur == len(w.counts) {
			w.cur = 0
		}
		w.total -= w.counts[w.cur]
		w.counts[w.cur] = 0
		w.start += w.width
	}
}

// observe counts one event at time t.
func (w *rateWindow) observe(t float64) {
	w.advance(t)
	w.counts[w.cur]++
	w.total++
}

// count returns the number of events inside the window ending at t.
func (w *rateWindow) count(t float64) uint32 {
	w.advance(t)
	return w.total
}

// windowSec returns the configured window width in seconds.
func (w *rateWindow) windowSec() float64 { return w.width * float64(len(w.counts)) }
