package detect

import (
	"math"
	"testing"

	"flowrecon/internal/telemetry"
	"flowrecon/internal/testutil"
)

// TestDetectorObserveZeroAlloc is the zero-alloc gate on the detector
// hot path: once a source's state exists, an observation — window
// rotation, sketch update, Welford moments, and all three scorers — must
// not touch the garbage collector. The detector rides the controller
// path of both substrates, so one allocation here taxes every PACKET_IN.
func TestDetectorObserveZeroAlloc(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	reg := telemetry.NewRegistry(64)
	d := New(DefaultConfig())
	d.SetTelemetry(reg)
	// Warm: create per-source state (the one allowed allocation) and
	// drive the probed sources past their flag point so the one-time
	// verdict bookkeeping happens before measurement — steady state here
	// includes the post-flag scoring path.
	now := 0.0
	for i := 0; i < 100; i++ {
		now += 0.013
		for src := 0; src < 8; src++ {
			d.Observe(src, now, 4.07, false)
		}
	}
	avg := testing.AllocsPerRun(500, func() {
		now += 0.013
		d.Observe(3, now, 4.07, false)
		d.Observe(4, now+0.001, math.NaN(), true)
		d.ObserveRTT(3, 0.087)
	})
	if avg != 0 {
		t.Fatalf("steady-state Observe allocates %v allocs/run, want 0", avg)
	}
}

// TestDetectorDisabledZeroAlloc pins the disabled path: a nil detector
// must cost one branch and zero allocations, the same discipline as nil
// telemetry instruments — so substrates can call unconditionally.
func TestDetectorDisabledZeroAlloc(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	var d *Detector
	avg := testing.AllocsPerRun(500, func() {
		d.Observe(1, 0, 4.07, false)
		d.ObserveRTT(1, 0.087)
	})
	if avg != 0 {
		t.Fatalf("nil-detector Observe allocates %v allocs/run, want 0", avg)
	}
}
