package detect

import (
	"encoding/json"
	"math"
	"net/http"
	"sort"
	"strconv"
)

// SourceSummary is one source's row in the /debug/detect view.
type SourceSummary struct {
	Source       int     `json:"source"`
	Observations int64   `json:"observations"`
	WindowCount  uint32  `json:"windowCount"` // events in the window ending at the source's last observation
	RateHz       float64 `json:"rateHz"`      // WindowCount / WindowSec
	GapCV        float64 `json:"gapCV"`       // EWMA inter-arrival CV the regularity scorer tests (-1 until 2 gaps)
	MissFrac     float64 `json:"missFrac"`
	RTTp50Ms     float64 `json:"rttP50Ms"`
	RTTp95Ms     float64 `json:"rttP95Ms"`
	Score        float64 `json:"score"`
	Flagged      bool    `json:"flagged"`
	Reason       string  `json:"reason,omitempty"`
	FlagObs      int64   `json:"flagObs,omitempty"` // observation count when flagged
}

// Snapshot is the JSON document served at /debug/detect.
type Snapshot struct {
	SourcesTracked int             `json:"sourcesTracked"`
	Flagged        int             `json:"flagged"`
	DroppedSources int64           `json:"droppedSources"`
	WindowSec      float64         `json:"windowSec"`
	Top            []SourceSummary `json:"top,omitempty"`
}

func (d *Detector) summaryLocked(s *sourceState) SourceSummary {
	cv := s.ewmaCV()
	if math.IsNaN(cv) {
		cv = -1
	}
	return SourceSummary{
		Source:       s.src,
		Observations: s.obs,
		WindowCount:  s.win.count(s.lastT),
		RateHz:       float64(s.win.count(s.lastT)) / d.cfg.WindowSec,
		GapCV:        cv,
		MissFrac:     s.missFrac(),
		RTTp50Ms:     s.rtt.Quantile(0.5),
		RTTp95Ms:     s.rtt.Quantile(0.95),
		Score:        s.score,
		Flagged:      s.flagged,
		Reason:       s.reason,
		FlagObs:      s.flagObs,
	}
}

// TopOffenders returns the n highest-scoring sources (flagged first,
// then score descending, source ID ascending for determinism).
func (d *Detector) TopOffenders(n int) []SourceSummary {
	if d == nil || n <= 0 {
		return nil
	}
	d.mu.Lock()
	out := make([]SourceSummary, 0, len(d.sources))
	for _, s := range d.sources {
		out = append(out, d.summaryLocked(s))
	}
	d.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Flagged != b.Flagged {
			return a.Flagged
		}
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		return a.Source < b.Source
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// Snap captures the current detector state with the top n offenders.
func (d *Detector) Snap(n int) Snapshot {
	if d == nil {
		return Snapshot{}
	}
	top := d.TopOffenders(n)
	d.mu.Lock()
	defer d.mu.Unlock()
	return Snapshot{
		SourcesTracked: len(d.sources),
		Flagged:        d.flagged,
		DroppedSources: d.dropped,
		WindowSec:      d.cfg.WindowSec,
		Top:            top,
	}
}

// ServeHTTP serves the detector snapshot as JSON; ?n= bounds the
// top-offender list (default 10). Mount at /debug/detect.
func (d *Detector) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := 10
	if q := r.URL.Query().Get("n"); q != "" {
		if v, err := strconv.Atoi(q); err == nil && v >= 0 {
			n = v
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(d.Snap(n)) //nolint:errcheck // best-effort debug endpoint
}
