// Package detect is the defender's half of the timing side channel: a
// streaming anomaly detector that watches every PACKET_IN / probe on the
// controller path and scores each source's timing signature against a
// baseline learned from benign traffic.
//
// The attacker of §VI wins by driving the controller path with probes
// whose timing separates flow-table hits from misses. That same activity
// is visible to the defender — and it looks nothing like benign traffic:
//
//   - rate: eviction probing multiplies a source's PACKET_IN rate far
//     beyond its benign Poisson arrival rate (rate z-score);
//   - regularity: probe schedules are pathologically regular — the
//     coefficient of variation of inter-arrival gaps sits near 0 while
//     Poisson traffic has CV ≈ 1 (regularity test);
//   - skew: probing a cold flow repeatedly yields a hit/miss mix far
//     from the benign miss fraction (two-sided miss-skew z-test; only
//     meaningful on substrates that observe hits — the TCP controller
//     sees misses exclusively, so this scorer is off by default).
//
// Every per-source structure is fixed-size (ring-bucket rate window,
// log-bucket timing sketches, Welford moments), Observe is allocation-
// free after a source's first observation, and detectors merge — the
// properties that let one replica ride the netsim virtual-time hot path,
// another the live TCP controller, and per-trial replicas fold into a
// session-wide view for /debug/detect.
//
// A source here is a flow/source identifier (netsim flow ID, openflow
// universe flow ID): the attacker spoofs source addresses to probe other
// clients' flows, so probes attributed to the spoofed flow concentrate
// in that flow's stream — exactly where the anomaly shows up.
package detect

import (
	"math"
	"sort"
	"sync"

	"flowrecon/internal/telemetry"
)

// Baseline is the benign traffic profile the scorer compares against,
// learned offline from attack-free windows (see
// experiment.TrainDetectBaseline).
type Baseline struct {
	// Rates[src] is the benign controller-path observation rate of
	// source src in events/second. Sources beyond the slice fall back
	// to DefaultRate.
	Rates []float64 `json:"rates,omitempty"`
	// DefaultRate covers sources without a learned rate (events/s).
	DefaultRate float64 `json:"defaultRate"`
	// MissFracs[src] is the benign fraction of observations that were
	// table misses; sources beyond the slice fall back to MissFrac.
	MissFracs []float64 `json:"missFracs,omitempty"`
	// MissFrac is the fallback benign miss fraction.
	MissFrac float64 `json:"missFrac"`
}

func (b *Baseline) rateFor(src int) float64 {
	if src >= 0 && src < len(b.Rates) && b.Rates[src] > 0 {
		return b.Rates[src]
	}
	return b.DefaultRate
}

func (b *Baseline) missFracFor(src int) float64 {
	if src >= 0 && src < len(b.MissFracs) {
		return b.MissFracs[src]
	}
	return b.MissFrac
}

// Config tunes the detector. The zero value is unusable; start from
// DefaultConfig and override.
type Config struct {
	// WindowSec is the sliding rate window width in seconds.
	WindowSec float64
	// Buckets is the ring-bucket count of the rate window (resolution
	// WindowSec/Buckets).
	Buckets int
	// Baseline is the benign profile scored against.
	Baseline Baseline
	// RateZ flags a source whose windowed observation count exceeds the
	// benign expectation by this many Poisson standard deviations.
	RateZ float64
	// RegularityCVMax flags a source whose inter-arrival coefficient of
	// variation falls below this bound (benign Poisson gaps have CV≈1,
	// probe schedules CV≈0) once MinGaps gaps are seen. ≤0 disables.
	RegularityCVMax float64
	// MinGaps is the minimum inter-arrival gap count before the
	// regularity scorer may fire.
	MinGaps int
	// MissSkewZ flags a source whose hit/miss mix deviates from the
	// benign miss fraction by this many binomial standard deviations
	// (two-sided). ≤0 disables — required on substrates where the
	// observation point sees only misses (the TCP controller).
	MissSkewZ float64
	// MinObs is the minimum observation count before any scorer fires.
	MinObs int
	// MaxSources bounds tracked sources; observations for new sources
	// beyond the bound are dropped (and counted).
	MaxSources int
}

// DefaultConfig returns thresholds calibrated for the §VI evaluation
// universe (16 sources, benign λ ≈ 0.1–1/s, 15 s windows): FPR ≤ 1% on
// benign Poisson and bursty workloads while flagging the default
// attacker well inside 200 probes.
func DefaultConfig() Config {
	return Config{
		WindowSec:       15,
		Buckets:         16,
		Baseline:        Baseline{DefaultRate: 0.5, MissFrac: 0.5},
		RateZ:           8,
		RegularityCVMax: 0.3,
		MinGaps:         12,
		MissSkewZ:       0, // controller-path default: hits are invisible there
		MinObs:          8,
		MaxSources:      4096,
	}
}

// withDefaults fills unset fields so partial configs behave.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.WindowSec <= 0 {
		c.WindowSec = d.WindowSec
	}
	if c.Buckets <= 0 {
		c.Buckets = d.Buckets
	}
	if c.Baseline.DefaultRate <= 0 {
		c.Baseline.DefaultRate = d.Baseline.DefaultRate
	}
	if c.RateZ <= 0 {
		c.RateZ = d.RateZ
	}
	if c.MinGaps <= 0 {
		c.MinGaps = d.MinGaps
	}
	if c.MinObs <= 0 {
		c.MinObs = d.MinObs
	}
	if c.MaxSources <= 0 {
		c.MaxSources = d.MaxSources
	}
	return c
}

// Flag reasons, also the label values of detect_flagged_total{reason}.
const (
	ReasonRate       = "rate"
	ReasonRegularity = "regularity"
	ReasonMissSkew   = "miss-skew"
)

// Verdict records the moment a source crossed a detection threshold.
type Verdict struct {
	Source int     `json:"source"`
	T      float64 `json:"t"`      // observation-stream time, seconds
	Reason string  `json:"reason"` // ReasonRate, ReasonRegularity, ReasonMissSkew
	Score  float64 `json:"score"`  // normalized anomaly score (≥1 at flag time)
	Obs    int64   `json:"obs"`    // controller-path observations of the source so far
}

// sourceState is the complete per-source detector state: fixed-size
// after construction, so steady-state Observe allocates nothing.
type sourceState struct {
	src    int
	firstT float64
	lastT  float64
	obs    int64
	misses int64

	win rateWindow

	// Lifetime Welford moments over inter-arrival gaps — exact, and
	// mergeable across replicas (Chan et al. parallel combine).
	gapN    int64
	gapMean float64
	gapM2   float64

	// Exponentially-weighted gap moments (α = gapAlpha, memory ≈ the
	// last ~15 gaps) — the regularity scorer reads these, not the
	// lifetime moments: a source that turns into a metronome must look
	// like one within a window of gaps, however irregular its benign
	// history was. Lifetime CV converges to the probe signature only as
	// probes outnumber history, far too slowly for a 200-probe budget.
	ewmaMean float64
	ewmaVar  float64

	rtt Sketch // observed RTTs, milliseconds
	gap Sketch // inter-arrival gaps, seconds

	score   float64 // max normalized scorer output seen so far
	flagged bool
	reason  string
	flagT   float64
	flagObs int64
}

// gapAlpha is the EWMA smoothing factor of the regularity moments:
// 1/8 ≈ a ~15-gap effective memory.
const gapAlpha = 1.0 / 8

// gapCV returns the lifetime coefficient of variation of inter-arrival
// gaps (NaN until two gaps are seen).
func (s *sourceState) gapCV() float64 {
	if s.gapN < 2 || s.gapMean <= 0 {
		return math.NaN()
	}
	v := s.gapM2 / float64(s.gapN-1)
	return math.Sqrt(v) / s.gapMean
}

// ewmaCV returns the exponentially-weighted coefficient of variation the
// regularity scorer tests (NaN until two gaps are seen).
func (s *sourceState) ewmaCV() float64 {
	if s.gapN < 2 || s.ewmaMean <= 0 {
		return math.NaN()
	}
	return math.Sqrt(math.Max(s.ewmaVar, 0)) / s.ewmaMean
}

func (s *sourceState) missFrac() float64 {
	if s.obs == 0 {
		return 0
	}
	return float64(s.misses) / float64(s.obs)
}

// metrics is the detector's resolved instrument set (PR 1 idiom: nil
// instruments no-op, resolution happens once in SetTelemetry).
type metrics struct {
	observations *telemetry.Counter
	tracked      *telemetry.Gauge
	dropped      *telemetry.Counter
	flagRate     *telemetry.Counter
	flagReg      *telemetry.Counter
	flagSkew     *telemetry.Counter
}

func (m *metrics) flagCounter(reason string) *telemetry.Counter {
	switch reason {
	case ReasonRate:
		return m.flagRate
	case ReasonRegularity:
		return m.flagReg
	case ReasonMissSkew:
		return m.flagSkew
	}
	return nil
}

// Detector is the streaming anomaly detector. All methods are safe on a
// nil receiver (a nil detector is a disabled detector, costing one
// branch per call — the same discipline as the telemetry instruments),
// and safe for concurrent use.
type Detector struct {
	cfg Config

	mu       sync.Mutex
	sources  map[int]*sourceState
	flagged  int
	verdicts []Verdict
	dropped  int64

	onFlag func(Verdict)
	tm     metrics
}

// New builds a detector; zero fields of cfg take their defaults.
func New(cfg Config) *Detector {
	return &Detector{cfg: cfg.withDefaults(), sources: make(map[int]*sourceState)}
}

// Config returns the detector's effective (default-filled) config.
func (d *Detector) Config() Config {
	if d == nil {
		return Config{}
	}
	return d.cfg
}

// SetTelemetry routes the detector's instruments into reg:
// detect_observations_total, detect_sources_tracked (cumulative sources
// ever tracked, so per-trial replicas sharing a registry sum),
// detect_sources_dropped_total, detect_flagged_total{reason}.
func (d *Detector) SetTelemetry(reg *telemetry.Registry) {
	if d == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tm = metrics{
		observations: reg.Counter("detect_observations_total"),
		tracked:      reg.Gauge("detect_sources_tracked"),
		dropped:      reg.Counter("detect_sources_dropped_total"),
		flagRate:     reg.Counter("detect_flagged_total", "reason", ReasonRate),
		flagReg:      reg.Counter("detect_flagged_total", "reason", ReasonRegularity),
		flagSkew:     reg.Counter("detect_flagged_total", "reason", ReasonMissSkew),
	}
}

// OnFlag registers a callback invoked (outside the detector lock) each
// time a source is first flagged — the hook that turns verdicts into
// wide events on the observability spine.
func (d *Detector) OnFlag(fn func(Verdict)) {
	if d == nil {
		return
	}
	d.mu.Lock()
	d.onFlag = fn
	d.mu.Unlock()
}

// Observe feeds one controller-path observation: source src was seen at
// stream time t (seconds; virtual or wall, monotone per substrate) with
// round-trip time rttMs (NaN when the substrate has no timing for this
// event) and table outcome hit. This is the hot path: zero allocations
// in steady state (a source's first observation allocates its state).
func (d *Detector) Observe(src int, t, rttMs float64, hit bool) {
	if d == nil {
		return
	}
	d.mu.Lock()
	s := d.sources[src]
	if s == nil {
		if len(d.sources) >= d.cfg.MaxSources {
			d.dropped++
			d.mu.Unlock()
			d.tm.dropped.Inc()
			return
		}
		s = &sourceState{src: src, firstT: t, lastT: t}
		s.win = newRateWindow(d.cfg.WindowSec, d.cfg.Buckets)
		d.sources[src] = s
		d.tm.tracked.Add(1)
	} else {
		gap := t - s.lastT
		if gap >= 0 {
			s.gapN++
			delta := gap - s.gapMean
			s.gapMean += delta / float64(s.gapN)
			s.gapM2 += delta * (gap - s.gapMean)
			if s.gapN == 1 {
				s.ewmaMean, s.ewmaVar = gap, 0
			} else {
				diff := gap - s.ewmaMean
				incr := gapAlpha * diff
				s.ewmaMean += incr
				s.ewmaVar = (1 - gapAlpha) * (s.ewmaVar + diff*incr)
			}
			s.gap.Observe(gap)
		}
		if t > s.lastT {
			s.lastT = t
		}
	}
	s.obs++
	if !hit {
		s.misses++
	}
	s.win.observe(t)
	if !math.IsNaN(rttMs) {
		s.rtt.Observe(rttMs)
	}
	v, fired := d.scoreLocked(s, t)
	var cb func(Verdict)
	if fired {
		cb = d.onFlag
	}
	d.mu.Unlock()
	d.tm.observations.Inc()
	if fired {
		d.tm.flagCounter(v.Reason).Inc()
		if cb != nil {
			cb(v)
		}
	}
}

// ObserveRTT attributes a round-trip time to an already-tracked source
// without counting a controller-path event — the delivery-side hook for
// substrates where RTT is known only when the reply lands (netsim
// measures RTT at echo delivery, after the lookup was observed).
func (d *Detector) ObserveRTT(src int, rttMs float64) {
	if d == nil || math.IsNaN(rttMs) {
		return
	}
	d.mu.Lock()
	if s := d.sources[src]; s != nil {
		s.rtt.Observe(rttMs)
	}
	d.mu.Unlock()
}

// scoreLocked runs the three scorers over s and returns the verdict if
// this observation pushed the source over a threshold for the first
// time. Flags are sticky: a source flags at most once.
func (d *Detector) scoreLocked(s *sourceState, t float64) (Verdict, bool) {
	if s.obs < int64(d.cfg.MinObs) {
		return Verdict{}, false
	}
	score, reason := s.score, ""

	// Rate: windowed count vs Poisson expectation at the benign rate.
	lam := d.cfg.Baseline.rateFor(s.src)
	expect := lam * d.cfg.WindowSec
	if sd := math.Sqrt(math.Max(expect, 1)); sd > 0 {
		z := (float64(s.win.count(t)) - expect) / sd
		if n := z / d.cfg.RateZ; n > score {
			score, reason = n, ReasonRate
		}
	}

	// Regularity: exponentially-weighted inter-arrival CV far below the
	// Poisson CV of 1.
	if d.cfg.RegularityCVMax > 0 && s.gapN >= int64(d.cfg.MinGaps) {
		if cv := s.ewmaCV(); !math.IsNaN(cv) {
			n := d.cfg.RegularityCVMax / math.Max(cv, d.cfg.RegularityCVMax/64)
			if n > score {
				score, reason = n, ReasonRegularity
			}
		}
	}

	// Miss skew: binomial two-sided test of the hit/miss mix.
	if d.cfg.MissSkewZ > 0 {
		p := d.cfg.Baseline.missFracFor(s.src)
		if p > 0 && p < 1 {
			sd := math.Sqrt(p * (1 - p) / float64(s.obs))
			z := math.Abs(s.missFrac()-p) / sd
			if n := z / d.cfg.MissSkewZ; n > score {
				score, reason = n, ReasonMissSkew
			}
		}
	}

	if score <= s.score {
		return Verdict{}, false
	}
	s.score = score
	if s.flagged || score < 1 {
		return Verdict{}, false
	}
	s.flagged = true
	s.reason = reason
	s.flagT = t
	s.flagObs = s.obs
	d.flagged++
	v := Verdict{Source: s.src, T: t, Reason: reason, Score: score, Obs: s.obs}
	d.verdicts = append(d.verdicts, v)
	return v, true
}

// Score returns the source's current anomaly score (0 if untracked).
// Scores ≥ 1 are flagged.
func (d *Detector) Score(src int) float64 {
	if d == nil {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if s := d.sources[src]; s != nil {
		return s.score
	}
	return 0
}

// IsFlagged reports whether src has been flagged, and with what verdict.
func (d *Detector) IsFlagged(src int) (Verdict, bool) {
	if d == nil {
		return Verdict{}, false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.sources[src]
	if s == nil || !s.flagged {
		return Verdict{}, false
	}
	return Verdict{Source: s.src, T: s.flagT, Reason: s.reason, Score: s.score, Obs: s.flagObs}, true
}

// Verdicts returns a copy of all flag verdicts in flag order.
func (d *Detector) Verdicts() []Verdict {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Verdict, len(d.verdicts))
	copy(out, d.verdicts)
	return out
}

// Sources returns the number of tracked sources.
func (d *Detector) Sources() int {
	if d == nil {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.sources)
}

// Merge folds other's per-source state into d: counts add, sketches and
// Welford moments merge, flags stay sticky (first flag wins), scores
// take the max. Sliding rate windows cover disjoint time axes across
// replicas and do not merge; the merged view exposes totals and timing
// shapes. This is how per-trial detector replicas aggregate into the
// session-wide /debug/detect view.
func (d *Detector) Merge(other *Detector) {
	if d == nil || other == nil || d == other {
		return
	}
	other.mu.Lock()
	states := make([]*sourceState, 0, len(other.sources))
	for _, s := range other.sources {
		states = append(states, s)
	}
	droppedO := other.dropped
	other.mu.Unlock()
	sort.Slice(states, func(i, j int) bool { return states[i].src < states[j].src })

	var newFlags []string // reasons of flags first seen in this merge
	d.mu.Lock()
	d.dropped += droppedO
	for _, o := range states {
		s := d.sources[o.src]
		if s == nil {
			if len(d.sources) >= d.cfg.MaxSources {
				d.dropped++
				continue
			}
			s = &sourceState{src: o.src, firstT: o.firstT, lastT: o.lastT}
			s.win = newRateWindow(d.cfg.WindowSec, d.cfg.Buckets)
			d.sources[o.src] = s
			d.tm.tracked.Add(1)
		}
		// Chan et al. parallel-variance combine for the gap moments.
		if o.gapN > 0 {
			n1, n2 := float64(s.gapN), float64(o.gapN)
			delta := o.gapMean - s.gapMean
			tot := n1 + n2
			s.gapMean += delta * n2 / tot
			s.gapM2 += o.gapM2 + delta*delta*n1*n2/tot
			s.gapN += o.gapN
		}
		// The EWMA moments fold as a count-weighted blend — approximate
		// (EWMAs over disjoint streams have no exact merge) but the
		// merged view only reports them, it never re-scores live.
		if o.gapN > 0 && s.gapN > o.gapN {
			w := float64(o.gapN) / float64(s.gapN)
			s.ewmaMean = (1-w)*s.ewmaMean + w*o.ewmaMean
			s.ewmaVar = (1-w)*s.ewmaVar + w*o.ewmaVar
		} else if o.gapN > 0 {
			s.ewmaMean, s.ewmaVar = o.ewmaMean, o.ewmaVar
		}
		s.obs += o.obs
		s.misses += o.misses
		s.rtt.Merge(&o.rtt)
		s.gap.Merge(&o.gap)
		if o.score > s.score {
			s.score = o.score
		}
		if o.flagged && !s.flagged {
			s.flagged = true
			s.reason = o.reason
			s.flagT = o.flagT
			s.flagObs = o.flagObs
			d.flagged++
			d.verdicts = append(d.verdicts, Verdict{Source: o.src, T: o.flagT, Reason: o.reason, Score: o.score, Obs: o.flagObs})
			newFlags = append(newFlags, o.reason)
		}
	}
	d.mu.Unlock()
	// Counter bumps happen outside the lock, same as Observe: a replica's
	// flag becomes visible on the aggregate's detect_flagged_total the
	// moment its trial assembles.
	for _, reason := range newFlags {
		d.tm.flagCounter(reason).Inc()
	}
}
