package detect

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"testing"

	"flowrecon/internal/stats"
	"flowrecon/internal/telemetry"
)

func TestSketchQuantiles(t *testing.T) {
	var s Sketch
	for i := 1; i <= 1000; i++ {
		s.Observe(float64(i) * 0.01) // 0.01 .. 10
	}
	if s.N() != 1000 {
		t.Fatalf("N = %d, want 1000", s.N())
	}
	p50 := s.Quantile(0.5)
	if p50 < 2.5 || p50 > 10 {
		t.Fatalf("p50 = %v, want ≈5 within one octave split", p50)
	}
	p95 := s.Quantile(0.95)
	if p95 < p50 {
		t.Fatalf("p95 %v < p50 %v", p95, p50)
	}
	if got := s.Mean(); math.Abs(got-5.005) > 1e-9 {
		t.Fatalf("mean = %v, want 5.005 exactly (running sum)", got)
	}
}

func TestSketchEdgeValues(t *testing.T) {
	var s Sketch
	for _, v := range []float64{0, -1, math.NaN(), math.Inf(1), 1e-9, 1e12} {
		s.Observe(v)
	}
	if s.N() != 6 {
		t.Fatalf("N = %d, want 6 (degenerate values still count)", s.N())
	}
}

func TestSketchMerge(t *testing.T) {
	var a, b, both Sketch
	rng := stats.NewRNG(11)
	for i := 0; i < 500; i++ {
		v := rng.Exp(1)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		both.Observe(v)
	}
	a.Merge(&b)
	if a.N() != both.N() || a.counts != both.counts {
		t.Fatal("merged sketch differs from the sketch of the combined stream")
	}
	if math.Abs(a.sum-both.sum) > 1e-9*both.sum {
		t.Fatalf("merged sum %v vs combined-stream sum %v", a.sum, both.sum)
	}
}

func TestRateWindowRotation(t *testing.T) {
	w := newRateWindow(16, 16) // 1s buckets
	for i := 0; i < 10; i++ {
		w.observe(float64(i)) // one event per second, t=0..9
	}
	if got := w.count(9); got != 10 {
		t.Fatalf("count(9) = %d, want 10", got)
	}
	// At t=20 the events at t=0..4 have rotated out (window [4,20)).
	if got := w.count(20); got != 5 {
		t.Fatalf("count(20) = %d, want 5", got)
	}
	// Far future clears everything.
	if got := w.count(1e6); got != 0 {
		t.Fatalf("count(1e6) = %d, want 0", got)
	}
}

// aggressive returns a config with small warm-up gates so unit tests
// flag quickly.
func aggressive() Config {
	cfg := DefaultConfig()
	cfg.MinObs = 6
	cfg.MinGaps = 5
	cfg.Baseline.DefaultRate = 0.5
	return cfg
}

func TestRegularProbingFlags(t *testing.T) {
	d := New(aggressive())
	var v Verdict
	flagged := false
	d.OnFlag(func(got Verdict) { v, flagged = got, true })
	// Pathologically regular probing at 0.1s gaps, but at a LOW rate
	// (windowed count stays near the benign expectation is impossible at
	// 10/s — so spread it: 1 probe per 1.0s is only z≈2.3; use 1/0.9s
	// with tiny jitterless gaps → regularity must catch it first).
	for i := 0; i < 8; i++ {
		d.Observe(3, float64(i)*0.9, math.NaN(), false)
	}
	if !flagged {
		t.Fatal("regular probing not flagged")
	}
	if v.Reason != ReasonRegularity {
		t.Fatalf("reason = %q, want %q", v.Reason, ReasonRegularity)
	}
	if v.Source != 3 {
		t.Fatalf("source = %d, want 3", v.Source)
	}
	if got, ok := d.IsFlagged(3); !ok || got.Reason != v.Reason || got.Obs != v.Obs {
		t.Fatalf("IsFlagged = %+v,%v — want the OnFlag verdict %+v", got, ok, v)
	}
}

func TestPoissonTrafficNotFlagged(t *testing.T) {
	cfg := DefaultConfig()
	d := New(cfg)
	rng := stats.NewRNG(7)
	// 32 benign sources at their baseline rate for 10 windows.
	for src := 0; src < 32; src++ {
		t0 := 0.0
		for t0 < 10*cfg.WindowSec {
			t0 += rng.Exp(cfg.Baseline.DefaultRate)
			d.Observe(src, t0, math.NaN(), rng.Bernoulli(0.5))
		}
	}
	if n := len(d.Verdicts()); n != 0 {
		t.Fatalf("benign Poisson traffic flagged %d sources: %+v", n, d.Verdicts())
	}
}

func TestRateBurstFlags(t *testing.T) {
	cfg := aggressive()
	cfg.RegularityCVMax = 0 // isolate the rate scorer
	d := New(cfg)
	rng := stats.NewRNG(3)
	// Aggressive probing: 50 probes/s with randomized gaps (CV≈1, so
	// regularity would stay silent even if enabled).
	t0 := 0.0
	for i := 0; i < 200; i++ {
		t0 += rng.Exp(50)
		d.Observe(9, t0, 4.07, false)
	}
	v, ok := d.IsFlagged(9)
	if !ok {
		t.Fatal("50/s probing burst not flagged")
	}
	if v.Reason != ReasonRate {
		t.Fatalf("reason = %q, want %q", v.Reason, ReasonRate)
	}
	if v.Obs > 100 {
		t.Fatalf("flag took %d observations, want well under 100", v.Obs)
	}
}

func TestMissSkewFlags(t *testing.T) {
	cfg := aggressive()
	cfg.RegularityCVMax = 0
	cfg.RateZ = 1e9 // isolate the skew scorer
	cfg.MissSkewZ = 5
	cfg.Baseline.MissFrac = 0.3
	d := New(cfg)
	rng := stats.NewRNG(5)
	t0 := 0.0
	for i := 0; i < 400; i++ {
		t0 += rng.Exp(2)
		d.Observe(1, t0, 4.07, false) // all misses vs benign 30%
	}
	v, ok := d.IsFlagged(1)
	if !ok {
		t.Fatal("all-miss stream not flagged by skew scorer")
	}
	if v.Reason != ReasonMissSkew {
		t.Fatalf("reason = %q, want %q", v.Reason, ReasonMissSkew)
	}
}

func TestNilDetectorSafe(t *testing.T) {
	var d *Detector
	d.Observe(1, 0, 1, true)
	d.ObserveRTT(1, 1)
	d.OnFlag(nil)
	d.SetTelemetry(nil)
	d.Merge(New(DefaultConfig()))
	if d.Sources() != 0 || d.Score(1) != 0 || d.TopOffenders(5) != nil || d.Verdicts() != nil {
		t.Fatal("nil detector must report empty state")
	}
	if _, ok := d.IsFlagged(1); ok {
		t.Fatal("nil detector flagged a source")
	}
	if s := d.Snap(5); s.SourcesTracked != 0 {
		t.Fatal("nil detector snapshot not empty")
	}
}

func TestMaxSourcesDrop(t *testing.T) {
	cfg := aggressive()
	cfg.MaxSources = 4
	reg := telemetry.NewRegistry(16)
	d := New(cfg)
	d.SetTelemetry(reg)
	for src := 0; src < 10; src++ {
		d.Observe(src, float64(src), math.NaN(), false)
	}
	if d.Sources() != 4 {
		t.Fatalf("tracking %d sources, want cap 4", d.Sources())
	}
	if got := reg.Counter("detect_sources_dropped_total").Value(); got != 6 {
		t.Fatalf("dropped counter = %d, want 6", got)
	}
	if got := reg.Gauge("detect_sources_tracked").Value(); got != 4 {
		t.Fatalf("tracked gauge = %d, want 4", got)
	}
}

func TestTelemetryCounters(t *testing.T) {
	reg := telemetry.NewRegistry(16)
	d := New(aggressive())
	d.SetTelemetry(reg)
	for i := 0; i < 10; i++ {
		d.Observe(2, float64(i)*0.5, 4.07, false)
	}
	if got := reg.Counter("detect_observations_total").Value(); got != 10 {
		t.Fatalf("observations = %d, want 10", got)
	}
	if _, ok := d.IsFlagged(2); !ok {
		t.Fatal("regular 0.5s probing not flagged")
	}
	if got := reg.Counter("detect_flagged_total", "reason", ReasonRegularity).Value(); got != 1 {
		t.Fatalf("flagged{regularity} = %d, want 1", got)
	}
}

func TestTopOffendersAndHTTP(t *testing.T) {
	d := New(aggressive())
	rng := stats.NewRNG(2)
	// Two benign-ish sources and one regular prober.
	t0, t1 := 0.0, 0.0
	for i := 0; i < 40; i++ {
		t0 += rng.Exp(0.5)
		d.Observe(0, t0, 0.087, true)
		t1 += rng.Exp(0.5)
		d.Observe(1, t1, 4.07, false)
	}
	for i := 0; i < 20; i++ {
		d.Observe(7, float64(i)*0.5, 4.07, false)
	}
	top := d.TopOffenders(2)
	if len(top) != 2 {
		t.Fatalf("TopOffenders(2) returned %d rows", len(top))
	}
	if top[0].Source != 7 || !top[0].Flagged {
		t.Fatalf("top offender = %+v, want flagged source 7", top[0])
	}
	if top[0].RTTp50Ms < 2 || top[0].RTTp50Ms > 8 {
		t.Fatalf("prober p50 RTT = %v ms, want ≈4.07 within a bucket", top[0].RTTp50Ms)
	}

	rec := httptest.NewRecorder()
	d.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/detect?n=1", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, rec.Body.String())
	}
	if snap.SourcesTracked != 3 || snap.Flagged != 1 || len(snap.Top) != 1 {
		t.Fatalf("snapshot = %+v, want 3 tracked / 1 flagged / 1 top row", snap)
	}
	if !strings.Contains(rec.Body.String(), `"reason": "regularity"`) {
		t.Fatalf("snapshot missing flag reason:\n%s", rec.Body.String())
	}
}

func TestMergeFoldsState(t *testing.T) {
	// Default warm-up gates: MinGaps 5 makes the EWMA CV noisy enough to
	// fluke-flag a benign Poisson source, which would confuse the
	// flag-stickiness assertions below.
	cfg := DefaultConfig()
	cfg.MinObs = 6
	a, b := New(cfg), New(cfg)
	reg := telemetry.NewRegistry(0)
	a.SetTelemetry(reg)
	// Replica a: benign source 0. Replica b: the same source plus a
	// flagged prober on source 5.
	rng := stats.NewRNG(9)
	t0 := 0.0
	for i := 0; i < 30; i++ {
		t0 += rng.Exp(0.5)
		a.Observe(0, t0, 0.087, true)
	}
	t0 = 0.0
	for i := 0; i < 20; i++ {
		t0 += rng.Exp(0.5)
		b.Observe(0, t0, 0.087, true)
	}
	for i := 0; i < 20; i++ {
		b.Observe(5, float64(i)*0.5, 4.07, false)
	}
	if _, ok := b.IsFlagged(5); !ok {
		t.Fatal("setup: replica b did not flag source 5")
	}

	a.Merge(b)
	if a.Sources() != 2 {
		t.Fatalf("merged sources = %d, want 2", a.Sources())
	}
	v, ok := a.IsFlagged(5)
	if !ok || v.Reason != ReasonRegularity {
		t.Fatalf("merge lost the flag: %+v, %v", v, ok)
	}
	var row0 SourceSummary
	for _, r := range a.TopOffenders(10) {
		if r.Source == 0 {
			row0 = r
		}
	}
	if row0.Observations != 50 {
		t.Fatalf("merged source-0 observations = %d, want 50", row0.Observations)
	}
	// A replica's flag surfaces on the aggregate's instruments — the
	// flowtop "flagged" figure is this counter.
	if got := reg.Counter("detect_flagged_total", "reason", ReasonRegularity).Value(); got != 1 {
		t.Fatalf("detect_flagged_total{regularity} after merge = %d, want 1", got)
	}
	// Merging twice keeps flags sticky (no double count).
	a.Merge(b)
	if got := a.Snap(0).Flagged; got != 1 {
		t.Fatalf("flagged after double merge = %d, want 1", got)
	}
	if got := reg.Counter("detect_flagged_total", "reason", ReasonRegularity).Value(); got != 1 {
		t.Fatalf("detect_flagged_total{regularity} after double merge = %d, want 1", got)
	}
}

func TestMergeWelfordMoments(t *testing.T) {
	cfg := aggressive()
	cfg.MinObs = 1 << 30 // never flag; pure moment accounting
	a, b, whole := New(cfg), New(cfg), New(cfg)
	rng := stats.NewRNG(21)
	ta, tb, tw := 0.0, 0.0, 0.0
	for i := 0; i < 200; i++ {
		g := rng.Exp(1)
		if i < 100 {
			ta += g
			a.Observe(0, ta, math.NaN(), false)
		} else {
			tb += g
			b.Observe(0, tb, math.NaN(), false)
		}
	}
	// The combined stream sees the same 200 gap values (split across
	// replicas the first gap of each replica is lost, so compare moments
	// of the union of gaps instead: rebuild from the same draws).
	rng = stats.NewRNG(21)
	for i := 0; i < 200; i++ {
		g := rng.Exp(1)
		tw += g
		whole.Observe(0, tw, math.NaN(), false)
	}
	a.Merge(b)
	sa, sw := a.sources[0], whole.sources[0]
	// a∪b saw 198 gaps (each replica loses its first observation's gap),
	// whole saw 199; means must agree to sampling precision.
	if sa.gapN != 198 {
		t.Fatalf("merged gapN = %d, want 198", sa.gapN)
	}
	if math.Abs(sa.gapMean-sw.gapMean) > 0.05*sw.gapMean {
		t.Fatalf("merged gap mean %v vs whole-stream %v", sa.gapMean, sw.gapMean)
	}
	cvA, cvW := sa.gapCV(), sw.gapCV()
	if math.Abs(cvA-cvW) > 0.1 {
		t.Fatalf("merged CV %v vs whole-stream %v", cvA, cvW)
	}
}

func TestScoreMonotoneAndSticky(t *testing.T) {
	d := New(aggressive())
	count := 0
	d.OnFlag(func(Verdict) { count++ })
	for i := 0; i < 200; i++ {
		d.Observe(4, float64(i)*0.5, 4.07, false)
	}
	if count != 1 {
		t.Fatalf("OnFlag fired %d times, want exactly once (sticky)", count)
	}
	if s := d.Score(4); s < 1 {
		t.Fatalf("flagged source score = %v, want ≥1", s)
	}
}
