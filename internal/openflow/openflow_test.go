package openflow

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"flowrecon/internal/flows"
	"flowrecon/internal/rules"
)

func TestHeaderRoundTrip(t *testing.T) {
	buf, err := Encode(&EchoRequest{Data: []byte("ping")}, 77)
	if err != nil {
		t.Fatal(err)
	}
	msg, h, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.XID != 77 || h.Type != TypeEchoRequest || int(h.Length) != len(buf) {
		t.Fatalf("header = %+v", h)
	}
	echo, ok := msg.(*EchoRequest)
	if !ok || string(echo.Data) != "ping" {
		t.Fatalf("msg = %#v", msg)
	}
}

func TestDecodeRejectsBadInput(t *testing.T) {
	if _, _, err := Decode([]byte{1, 2}); err == nil {
		t.Fatal("short buffer accepted")
	}
	buf, _ := Encode(&Hello{}, 1)
	buf[0] = 0x04 // wrong version
	if _, _, err := Decode(buf); err == nil {
		t.Fatal("wrong version accepted")
	}
	buf, _ = Encode(&Hello{}, 1)
	buf[1] = 99 // unsupported type
	if _, _, err := Decode(buf); err == nil {
		t.Fatal("unknown type accepted")
	}
	buf, _ = Encode(&PacketIn{Data: []byte("x")}, 1)
	if _, _, err := Decode(buf[:HeaderLen+2]); err == nil {
		t.Fatal("truncated body accepted")
	}
}

func TestAllMessagesRoundTrip(t *testing.T) {
	match := Match{Wildcards: 3, DlType: 0x0800, NwProto: 1, NwSrc: 0x0a000100, NwDst: 0x0a000110, TpSrc: 10, TpDst: 20}
	msgs := []Message{
		&Hello{},
		&EchoRequest{Data: []byte("abc")},
		&EchoReply{Data: []byte("abc")},
		&FeaturesRequest{},
		&FeaturesReply{DatapathID: 42, NumBuffers: 256, NumTables: 1, Capabilities: 7, Actions: 0xFFF},
		&PacketIn{BufferID: 9, TotalLen: 16, InPort: 3, Reason: ReasonNoMatch, Data: []byte("0123456789abcdef")},
		&FlowMod{Match: match, Cookie: 5, Command: FlowModAdd, IdleTimeout: 10, Priority: 7, BufferID: 9},
		&PacketOut{BufferID: 9, InPort: 3, Data: []byte("payload")},
		&FlowRemoved{Match: match, Cookie: 5, Priority: 7, Reason: RemovedIdleTimeout, DurationSec: 12, IdleTimeout: 10, PacketCount: 3, ByteCount: 99},
		&ErrorMsg{ErrType: 1, Code: 2, Data: []byte("bad")},
	}
	for _, in := range msgs {
		buf, err := Encode(in, 5)
		if err != nil {
			t.Fatalf("%s: %v", in.Type(), err)
		}
		out, h, err := Decode(buf)
		if err != nil {
			t.Fatalf("%s: %v", in.Type(), err)
		}
		if h.Type != in.Type() {
			t.Fatalf("type %s decoded as %s", in.Type(), h.Type)
		}
		reenc, err := Encode(out, 5)
		if err != nil {
			t.Fatalf("%s re-encode: %v", in.Type(), err)
		}
		if string(reenc) != string(buf) {
			t.Fatalf("%s: round trip not byte-identical\n in: %x\nout: %x", in.Type(), buf, reenc)
		}
	}
}

func TestTupleRoundTrip(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, proto uint8) bool {
		in := flows.FiveTuple{
			Src: flows.IPv4(src), Dst: flows.IPv4(dst),
			SrcPort: sp, DstPort: dp, Proto: flows.Proto(proto),
		}
		out, err := DecodeTuple(EncodeTuple(in))
		return err == nil && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeTuple([]byte{1, 2, 3}); err == nil {
		t.Fatal("short tuple accepted")
	}
}

func TestMsgTypeStrings(t *testing.T) {
	for _, typ := range []MsgType{TypeHello, TypeError, TypeEchoRequest, TypeEchoReply, TypeFeaturesRequest, TypeFeaturesReply, TypePacketIn, TypeFlowRemoved, TypePacketOut, TypeFlowMod, MsgType(200)} {
		if typ.String() == "" {
			t.Fatalf("empty name for %d", typ)
		}
	}
}

func TestTimeoutSeconds(t *testing.T) {
	if got := timeoutSeconds(10, 0.1); got != 1 {
		t.Fatalf("10 steps × 0.1s = %d, want 1", got)
	}
	if got := timeoutSeconds(15, 0.1); got != 2 {
		t.Fatalf("15 steps × 0.1s = %d, want 2 (ceiling)", got)
	}
	if got := timeoutSeconds(1, 0.001); got != 1 {
		t.Fatalf("minimum = %d, want 1", got)
	}
	if got := timeoutSeconds(1<<20, 1000); got != 0xFFFF {
		t.Fatalf("saturation = %d", got)
	}
}

// testFabric builds a controller + switch pair over loopback TCP with the
// paper's client-server universe.
func testFabric(t *testing.T, capacity int, opts ControllerOptions) (*Switch, *Controller, *flows.Universe, *rules.Set) {
	t.Helper()
	universe := flows.ClientServerUniverse(flows.MakeIPv4(10, 0, 1, 0), 4)
	rs, err := rules.NewSet([]rules.Rule{
		{Name: "r0", Cover: flows.SetOf(0, 1), Priority: 3, Timeout: 2},
		{Name: "r1", Cover: flows.SetOf(1, 2), Priority: 2, Timeout: 2},
		{Name: "r2", Cover: flows.SetOf(2), Priority: 1, Timeout: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if opts.StepSeconds == 0 {
		opts.StepSeconds = 0.5
	}
	ctl := NewController(rs, universe, opts)
	addr, err := ctl.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sw, err := NewSwitch(1, rs, universe, capacity, opts.StepSeconds)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Connect(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		sw.Close()
		ctl.Close()
	})
	return sw, ctl, universe, rs
}

func TestSwitchMissTheHit(t *testing.T) {
	sw, ctl, universe, _ := testFabric(t, 3, ControllerOptions{})
	tuple := universe.Tuple(0)

	res1, err := sw.Inject(tuple)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Hit {
		t.Fatal("first packet hit an empty table")
	}
	if res1.RuleID != 0 {
		t.Fatalf("installed rule %d, want r0", res1.RuleID)
	}

	res2, err := sw.Inject(tuple)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Hit {
		t.Fatal("second packet missed despite installed rule")
	}
	if res2.RuleID != 0 {
		t.Fatalf("hit rule %d", res2.RuleID)
	}
	if ctl.PacketIns() != 1 {
		t.Fatalf("controller saw %d packet-ins, want 1", ctl.PacketIns())
	}
}

func TestSwitchPriorityMatch(t *testing.T) {
	sw, _, universe, _ := testFabric(t, 3, ControllerOptions{})
	// Flow 1 is covered by r0 (prio 3) and r1 (prio 2): the miss must
	// install r0.
	res, err := sw.Inject(universe.Tuple(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.RuleID != 0 {
		t.Fatalf("installed rule %d, want r0", res.RuleID)
	}
	// Flow 2 then misses (r0 does not cover it) and installs r1.
	res, err = sw.Inject(universe.Tuple(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Hit || res.RuleID != 1 {
		t.Fatalf("flow 2: %+v, want miss installing r1", res)
	}
}

func TestSwitchUncoveredFlowFloods(t *testing.T) {
	sw, ctl, universe, _ := testFabric(t, 3, ControllerOptions{})
	// Flow 3 is covered by no rule: the controller releases the packet
	// without installing anything.
	res, err := sw.Inject(universe.Tuple(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Hit || res.RuleID != -1 {
		t.Fatalf("uncovered flow: %+v", res)
	}
	if got := sw.CachedRules(); len(got) != 0 {
		t.Fatalf("cached = %v", got)
	}
	if ctl.PacketIns() != 1 {
		t.Fatalf("packet-ins = %d", ctl.PacketIns())
	}
}

func TestSideChannelDelayGap(t *testing.T) {
	// The essence of the attack: a miss (controller round trip, here with
	// an explicit processing delay) takes observably longer than a hit.
	sw, _, universe, _ := testFabric(t, 3, ControllerOptions{ProcessingDelay: 3 * time.Millisecond})
	tuple := universe.Tuple(0)
	miss, err := sw.Inject(tuple)
	if err != nil {
		t.Fatal(err)
	}
	hit, err := sw.Inject(tuple)
	if err != nil {
		t.Fatal(err)
	}
	if miss.Hit || !hit.Hit {
		t.Fatalf("unexpected outcomes: miss=%+v hit=%+v", miss, hit)
	}
	if miss.Delay < 3*time.Millisecond {
		t.Fatalf("miss delay %v below controller processing delay", miss.Delay)
	}
	if hit.Delay >= miss.Delay {
		t.Fatalf("no timing gap: hit %v vs miss %v", hit.Delay, miss.Delay)
	}
}

func TestSwitchIdleTimeoutExpires(t *testing.T) {
	sw, _, universe, _ := testFabric(t, 3, ControllerOptions{StepSeconds: 0.02}) // 2 steps ≈ 40ms
	if _, err := sw.Inject(universe.Tuple(0)); err != nil {
		t.Fatal(err)
	}
	if got := sw.CachedRules(); len(got) != 1 {
		t.Fatalf("cached = %v", got)
	}
	time.Sleep(80 * time.Millisecond)
	res, err := sw.Inject(universe.Tuple(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Hit {
		t.Fatal("rule survived its idle timeout")
	}
}

func TestSwitchDisconnect(t *testing.T) {
	sw, ctl, universe, _ := testFabric(t, 3, ControllerOptions{ProcessingDelay: 50 * time.Millisecond})
	errCh := make(chan error, 1)
	go func() {
		_, err := sw.Inject(universe.Tuple(0))
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the PACKET_IN depart
	ctl.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("inject succeeded despite controller death")
		}
		if !errors.Is(err, ErrDisconnected) {
			t.Logf("inject failed with %v (transport error also acceptable)", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("inject did not unblock after disconnect")
	}
}

func TestControllerAddr(t *testing.T) {
	ctl := NewController(nil, nil, ControllerOptions{})
	if _, err := ctl.Addr(); !errors.Is(err, ErrNoListener) {
		t.Fatalf("err = %v", err)
	}
}

func TestFlowRemovedNotification(t *testing.T) {
	sw, ctl, universe, _ := testFabric(t, 3, ControllerOptions{StepSeconds: 0.02}) // 2-step rules ≈ 40ms
	if _, err := sw.Inject(universe.Tuple(0)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(80 * time.Millisecond)
	// The expired rule is reaped lazily on the next table access.
	if _, err := sw.Inject(universe.Tuple(0)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for ctl.FlowRemovals() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if ctl.FlowRemovals() == 0 {
		t.Fatal("controller saw no FLOW_REMOVED after an idle timeout")
	}
}

func TestTwoSwitchesShareOneController(t *testing.T) {
	universe := flows.ClientServerUniverse(flows.MakeIPv4(10, 0, 1, 0), 4)
	rs, err := rules.NewSet([]rules.Rule{
		{Name: "r0", Cover: flows.SetOf(0, 1), Priority: 2, Timeout: 4},
		{Name: "r1", Cover: flows.SetOf(2), Priority: 1, Timeout: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctl := NewController(rs, universe, ControllerOptions{StepSeconds: 0.5})
	addr, err := ctl.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	mkSwitch := func(dpid uint64) *Switch {
		sw, err := NewSwitch(dpid, rs, universe, 3, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if err := sw.Connect(addr); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sw.Close() })
		return sw
	}
	swA, swB := mkSwitch(1), mkSwitch(2)

	// A miss at switch A must not warm switch B: flow tables are per
	// datapath (the paper's per-switch reconnaissance premise).
	if res, err := swA.Inject(universe.Tuple(0)); err != nil || res.Hit {
		t.Fatalf("switch A first inject: %+v %v", res, err)
	}
	if res, err := swB.Inject(universe.Tuple(0)); err != nil || res.Hit {
		t.Fatalf("switch B should still miss: %+v %v", res, err)
	}
	if res, err := swA.Inject(universe.Tuple(0)); err != nil || !res.Hit {
		t.Fatalf("switch A second inject should hit: %+v %v", res, err)
	}
	if ctl.PacketIns() != 2 {
		t.Fatalf("controller packet-ins = %d, want 2", ctl.PacketIns())
	}
}
