package openflow

import (
	"testing"
	"time"

	"flowrecon/internal/detect"
	"flowrecon/internal/flows"
	"flowrecon/internal/rules"
	"flowrecon/internal/telemetry"
)

// TestControllerDetectorFlagsEvictionChurn runs the eviction-probing
// signature over real loopback TCP: with a one-entry flow table, a
// prober cycling two covered flows forces every inject through the
// controller, and the attached detector must flag both probed flows on
// their PACKET_IN rate. The test scores on rate only (wall-clock gap
// regularity is scheduler-dependent, not something CI should gate on).
func TestControllerDetectorFlagsEvictionChurn(t *testing.T) {
	universe := flows.ClientServerUniverse(flows.MakeIPv4(10, 0, 1, 0), 4)
	rs, err := rules.NewSet([]rules.Rule{
		{Name: "r0", Cover: flows.SetOf(0, 1), Priority: 3, Timeout: 2},
		{Name: "r1", Cover: flows.SetOf(1, 2), Priority: 2, Timeout: 2},
		{Name: "r2", Cover: flows.SetOf(2), Priority: 1, Timeout: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := detect.DefaultConfig()
	cfg.WindowSec = 5
	cfg.Baseline.DefaultRate = 0.2 // benign clients rarely miss
	cfg.RateZ = 3
	cfg.MinObs = 6
	cfg.MinGaps = 1 << 20 // regularity off: wall-clock gaps are CI noise
	d := detect.New(cfg)
	reg := telemetry.NewRegistry(256)
	d.SetTelemetry(reg)

	ctl := NewController(rs, universe, ControllerOptions{StepSeconds: 0.5})
	ctl.SetDetector(d)
	ctl.SetTelemetry(reg)
	addr, err := ctl.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sw, err := NewSwitch(1, rs, universe, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Connect(addr); err != nil {
		t.Fatal(err)
	}
	defer func() {
		sw.Close()
		ctl.Close()
	}()

	// Capacity 1: alternating two covered flows evicts on every probe,
	// so each inject is a miss → PACKET_IN → detector observation.
	for i := 0; i < 40; i++ {
		fid := flows.ID(0)
		if i%2 == 1 {
			fid = 2
		}
		if _, err := sw.Inject(universe.Tuple(fid)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}

	for _, fid := range []int{0, 2} {
		v, ok := d.IsFlagged(fid)
		if !ok {
			t.Fatalf("eviction churn on flow %d not flagged; top=%+v", fid, d.TopOffenders(4))
		}
		if v.Reason != detect.ReasonRate {
			t.Fatalf("flow %d flag reason = %q, want %q", fid, v.Reason, detect.ReasonRate)
		}
	}
	if _, ok := d.IsFlagged(1); ok {
		t.Fatal("unprobed flow 1 flagged")
	}
	if got := reg.Counter("detect_observations_total").Value(); got < 40 {
		t.Fatalf("detect_observations_total = %d, want ≥ 40 (one per miss)", got)
	}
	if got := reg.Counter("detect_flagged_total", "reason", detect.ReasonRate).Value(); got != 2 {
		t.Fatalf("detect_flagged_total{rate} = %d, want 2", got)
	}
	if got := reg.Gauge("detect_sources_tracked").Value(); got != int64(d.Sources()) {
		t.Fatalf("tracked gauge %d != live sources %d", got, d.Sources())
	}
}
