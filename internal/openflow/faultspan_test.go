package openflow

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"flowrecon/internal/faults"
	"flowrecon/internal/telemetry"
)

// assertNoOrphans fails if any span is still open (End never called) or
// ends before it starts — the invariant the InjectTimeout exit paths
// guarantee even for probes that time out, disconnect, or fail to send.
func assertNoOrphans(t *testing.T, spans []telemetry.Span) {
	t.Helper()
	for _, s := range spans {
		if s.End < s.Start {
			t.Fatalf("orphaned span (never ended): %+v", s)
		}
	}
}

// TestSpansNoOrphansOnProbeTimeout: a wedged controller swallows every
// PACKET_IN; the probe must end in ErrProbeTimeout with its inject and
// packet_in spans both finished and annotated, not left open.
func TestSpansNoOrphansOnProbeTimeout(t *testing.T) {
	universe := flowsUniverse()
	rs := testRules(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		raw, err := ln.Accept()
		if err != nil {
			return
		}
		conn := NewConn(raw)
		_ = conn.Handshake()
		for { // a wedged controller: drain and never answer
			if _, _, err := conn.Recv(); err != nil {
				return
			}
		}
	}()

	sw, err := NewSwitch(1, rs, universe, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry(0)
	reg.EnableSpans(0)
	sw.SetTelemetry(reg)
	if err := sw.Connect(ln.Addr().String()); err != nil {
		t.Fatal(err)
	}
	defer sw.Close()

	_, err = sw.InjectTimeout(universe.Tuple(0), 10*time.Millisecond, 2)
	if !errors.Is(err, ErrProbeTimeout) {
		t.Fatalf("want ErrProbeTimeout, got %v", err)
	}

	spans := reg.Spans().Spans()
	assertNoOrphans(t, spans)
	var inject, pin *telemetry.Span
	for i := range spans {
		switch spans[i].Name {
		case "inject":
			inject = &spans[i]
		case "packet_in":
			pin = &spans[i]
		}
	}
	if inject == nil || pin == nil {
		t.Fatalf("timeout probe lost spans: %+v", spans)
	}
	if inject.Detail != "timeout" {
		t.Fatalf("inject detail = %q, want timeout", inject.Detail)
	}
	if pin.Trace != inject.Trace || pin.Parent != inject.ID {
		t.Fatalf("packet_in cross-wired: %+v under %+v", pin, inject)
	}
}

// TestSpansNoCrossWireOnRetransmit: duplicate PACKET_INs (retransmits
// answered by the controller's dedup cache) must produce exactly one
// decision span, parented under the retransmitted probe's own packet_in
// — never under another trace.
func TestSpansNoCrossWireOnRetransmit(t *testing.T) {
	universe := flowsUniverse()
	rs := testRules(t)
	ctl := NewController(rs, universe, ControllerOptions{StepSeconds: 0.5, ProcessingDelay: 40 * time.Millisecond})
	ctlReg := telemetry.NewRegistry(0)
	ctlReg.EnableSpans(0).SetNamespace(SpanNamespaceController)
	ctl.SetTelemetry(ctlReg)
	addr, err := ctl.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sw, err := NewSwitch(1, rs, universe, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	swReg := telemetry.NewRegistry(0)
	swReg.EnableSpans(0).SetNamespace(SpanNamespaceSwitch)
	sw.SetTelemetry(swReg)
	if err := sw.Connect(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		sw.Close()
		ctl.Close()
	})

	// 10ms timeout against a 40ms decision forces several retransmits.
	res, err := sw.InjectTimeout(universe.Tuple(0), 10*time.Millisecond, 20)
	if err != nil {
		t.Fatalf("inject with retransmit: %v", err)
	}
	if res.Hit {
		t.Fatalf("result = %+v, want miss", res)
	}
	if got := swReg.Snapshot().Counters["switch_probe_retries_total"]; got < 1 {
		t.Fatalf("no retransmit happened (retries=%d); test proves nothing", got)
	}

	swSpans := swReg.Spans().Spans()
	assertNoOrphans(t, swSpans)
	var pins, decs []telemetry.Span
	for _, s := range swSpans {
		if s.Name == "packet_in" {
			pins = append(pins, s)
		}
	}
	for _, s := range ctlReg.Spans().Spans() {
		if s.Name == "controller.decision" {
			decs = append(decs, s)
		}
	}
	if len(pins) != 1 {
		t.Fatalf("retransmits opened %d packet_in spans, want 1", len(pins))
	}
	if len(decs) != 1 {
		t.Fatalf("dedup failed: %d decision spans, want 1", len(decs))
	}
	if decs[0].Trace != pins[0].Trace || decs[0].Parent != pins[0].ID {
		t.Fatalf("decision cross-wired: %+v under pin %+v", decs[0], pins[0])
	}
}

// TestSpansUnderChaosNeverOrphanOrCrossWire drives the full TCP stack
// through a lossy, resetting control channel with reconnects armed, then
// audits the merged two-process span streams: every span closed, every
// controller decision joined to a packet_in of the SAME trace, and no
// trace with more than one decision chain.
func TestSpansUnderChaosNeverOrphanOrCrossWire(t *testing.T) {
	universe := flowsUniverse()
	rs := testRules(t)
	prof := faults.Profile{Seed: 11, LossProb: 0.05, JitterMeanMs: 0.2, ResetProb: 0.01}
	ctl := NewController(rs, universe, ControllerOptions{
		StepSeconds: 0.5, ProcessingDelay: time.Millisecond, Faults: prof,
	})
	ctlReg := telemetry.NewRegistry(0)
	ctlReg.EnableSpans(0).SetNamespace(SpanNamespaceController)
	ctl.SetTelemetry(ctlReg)
	addr, err := ctl.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sw, err := NewSwitch(1, rs, universe, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	swReg := telemetry.NewRegistry(0)
	swReg.EnableSpans(0).SetNamespace(SpanNamespaceSwitch)
	sw.SetTelemetry(swReg)

	swProf := faults.Profile{Seed: 12, LossProb: 0.05, JitterMeanMs: 0.2}
	var ordinal atomic.Int64
	dialer := func() (*Conn, error) {
		raw, err := net.DialTimeout("tcp", addr, DefaultDialTimeout)
		if err != nil {
			return nil, err
		}
		return NewConn(faults.WrapConn(raw, swProf.Stream(ordinal.Add(1)))), nil
	}
	sw.SetReconnect(ReconnectPolicy{MaxRetries: 8, Seed: 12}, dialer)
	conn, err := dialer()
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Start(conn); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		sw.Close()
		ctl.Close()
	})

	const probes = 60
	for i := 0; i < probes; i++ {
		tuple := universe.Tuple(0)
		if i%2 == 1 {
			tuple = universe.Tuple(2)
		}
		_, err := sw.InjectTimeout(tuple, 20*time.Millisecond, 3)
		if err != nil && !errors.Is(err, ErrProbeTimeout) && !errors.Is(err, ErrDisconnected) {
			t.Fatalf("probe %d: unexpected terminal error %v", i, err)
		}
	}

	swSpans := swReg.Spans().Spans()
	assertNoOrphans(t, swSpans)
	injects := map[int64]bool{}
	pinByTrace := map[int64]telemetry.Span{}
	for _, s := range swSpans {
		switch s.Name {
		case "inject":
			if injects[s.Trace] {
				t.Fatalf("trace %d has two inject roots", s.Trace)
			}
			injects[s.Trace] = true
		case "packet_in":
			if _, dup := pinByTrace[s.Trace]; dup {
				t.Fatalf("trace %d has two packet_in spans", s.Trace)
			}
			pinByTrace[s.Trace] = s
		}
	}
	if len(injects) != probes {
		t.Fatalf("%d inject roots, want %d", len(injects), probes)
	}

	// Dropped and reset PACKET_INs are fine — but every decision the
	// controller DID record must join the right probe, exactly once.
	decsByTrace := map[int64]int{}
	for _, s := range ctlReg.Spans().Spans() {
		if s.Name != "controller.decision" {
			continue
		}
		pin, ok := pinByTrace[s.Trace]
		if !ok {
			t.Fatalf("decision on unknown trace %d (cross-wired?): %+v", s.Trace, s)
		}
		if s.Parent != pin.ID {
			t.Fatalf("decision parent %d != packet_in %d on trace %d", s.Parent, pin.ID, s.Trace)
		}
		decsByTrace[s.Trace]++
		if decsByTrace[s.Trace] > 1 {
			t.Fatalf("trace %d accumulated %d decisions", s.Trace, decsByTrace[s.Trace])
		}
	}
	if len(decsByTrace) == 0 {
		t.Fatal("chaos dropped every decision; loosen the fault profile")
	}
}
