package openflow

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"flowrecon/internal/faults"
	"flowrecon/internal/flows"
	"flowrecon/internal/rules"
	"flowrecon/internal/telemetry"
)

// robustPolicy is the shared 3-rule policy of the switch tests.
func robustPolicy(t *testing.T) (*rules.Set, *flows.Universe) {
	t.Helper()
	universe := flows.ClientServerUniverse(flows.MakeIPv4(10, 0, 1, 0), 4)
	rs, err := rules.NewSet([]rules.Rule{
		{Name: "r0", Cover: flows.SetOf(0, 1), Priority: 3, Timeout: 4},
		{Name: "r1", Cover: flows.SetOf(1, 2), Priority: 2, Timeout: 4},
		{Name: "r2", Cover: flows.SetOf(2), Priority: 1, Timeout: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return rs, universe
}

// TestSwitchReconnectsAfterConnLoss: killing the control channel
// mid-run must not kill the switch — the receive loop redials with
// backoff and the next probe goes through, with the outage visible in
// switch_reconnects_total.
func TestSwitchReconnectsAfterConnLoss(t *testing.T) {
	rs, universe := robustPolicy(t)
	ctl := NewController(rs, universe, ControllerOptions{StepSeconds: 0.5})
	addr, err := ctl.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	sw, err := NewSwitch(1, rs, universe, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry(0)
	sw.SetTelemetry(reg)
	if err := sw.ConnectWithRetry(addr, ReconnectPolicy{
		MaxRetries: 10, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond, Seed: 1,
	}); err != nil {
		t.Fatal(err)
	}
	defer sw.Close()

	if _, err := sw.Inject(universe.Tuple(0)); err != nil {
		t.Fatalf("pre-outage inject: %v", err)
	}

	// Hard-kill the control channel out from under the switch.
	sw.currentConn().Close()

	// The next probes may race the redial; retry until the channel heals.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := sw.Inject(universe.Tuple(2))
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("switch never recovered: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := reg.Snapshot().Counters["switch_reconnects_total"]; got < 1 {
		t.Fatalf("reconnects counter = %d, want ≥ 1", got)
	}
}

// TestInjectTimeoutRetransmitAndDedup: a slow controller makes the
// first wait window expire, the switch retransmits the same buffer id,
// and the controller answers the duplicate from its dedup cache — the
// application still runs exactly once.
func TestInjectTimeoutRetransmitAndDedup(t *testing.T) {
	rs, universe := robustPolicy(t)
	ctl := NewController(rs, universe, ControllerOptions{StepSeconds: 0.5, ProcessingDelay: 40 * time.Millisecond})
	reg := telemetry.NewRegistry(0)
	ctl.SetTelemetry(reg)
	addr, err := ctl.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	sw, err := NewSwitch(1, rs, universe, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	swReg := telemetry.NewRegistry(0)
	sw.SetTelemetry(swReg)
	if err := sw.Connect(addr); err != nil {
		t.Fatal(err)
	}
	defer sw.Close()

	res, err := sw.InjectTimeout(universe.Tuple(0), 10*time.Millisecond, 20)
	if err != nil {
		t.Fatalf("inject with retransmit: %v", err)
	}
	if res.Hit || res.RuleID != 0 {
		t.Fatalf("result = %+v, want miss installing r0", res)
	}
	if got := ctl.PacketIns(); got != 1 {
		t.Fatalf("application ran %d times, want exactly 1 despite retransmits", got)
	}
	if got := swReg.Snapshot().Counters["switch_probe_retries_total"]; got < 1 {
		t.Fatalf("probe retries counter = %d, want ≥ 1", got)
	}
	// Wait for the controller to drain the duplicate PACKET_INs queued
	// behind the first (slow) one, then check the dedup counter.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if reg.Snapshot().Counters["controller_packet_in_dupes_total"] >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("controller never observed a duplicate PACKET_IN")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestInjectTimeoutGivesUp: when the controller never answers, the
// probe ends in ErrProbeTimeout after its retries — never a hang.
func TestInjectTimeoutGivesUp(t *testing.T) {
	rs, universe := robustPolicy(t)
	// A listener that accepts, handshakes, asks for features, then
	// swallows everything — a wedged controller.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		raw, err := ln.Accept()
		if err != nil {
			return
		}
		conn := NewConn(raw)
		_ = conn.Handshake()
		for { // drain and ignore
			if _, _, err := conn.Recv(); err != nil {
				return
			}
		}
	}()

	sw, err := NewSwitch(1, rs, universe, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Connect(ln.Addr().String()); err != nil {
		t.Fatal(err)
	}
	defer sw.Close()

	begin := time.Now()
	_, err = sw.InjectTimeout(universe.Tuple(0), 10*time.Millisecond, 2)
	if !errors.Is(err, ErrProbeTimeout) {
		t.Fatalf("want ErrProbeTimeout, got %v", err)
	}
	if elapsed := time.Since(begin); elapsed > 2*time.Second {
		t.Fatalf("gave up only after %v", elapsed)
	}
}

// TestChaosLossyControlChannel drives the full TCP stack through a
// lossy, resetting control channel: the controller's listener drops 2%
// of its replies and occasionally resets, the switch injects with
// timeouts + retransmits under a reconnect policy, and every probe must
// terminate (result, explicit timeout, or disconnect — never a hang).
func TestChaosLossyControlChannel(t *testing.T) {
	rs, universe := robustPolicy(t)
	prof := faults.Profile{Seed: 11, LossProb: 0.02, JitterMeanMs: 0.2, ResetProb: 0.005}
	ctl := NewController(rs, universe, ControllerOptions{StepSeconds: 0.5, Faults: prof})
	reg := telemetry.NewRegistry(0)
	ctl.SetTelemetry(reg)
	addr, err := ctl.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	// The switch side is lossy too: wrap each dialed transport with its
	// own derived stream (sub = connection ordinal).
	swProf := faults.Profile{Seed: 12, LossProb: 0.02, JitterMeanMs: 0.2}
	var ordinal atomic.Int64
	dialer := func() (*Conn, error) {
		raw, err := net.DialTimeout("tcp", addr, time.Second)
		if err != nil {
			return nil, err
		}
		return NewConn(faults.WrapConn(raw, swProf.Stream(ordinal.Add(1)))), nil
	}

	sw, err := NewSwitch(1, rs, universe, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	swReg := telemetry.NewRegistry(0)
	sw.SetTelemetry(swReg)
	sw.SetReconnect(ReconnectPolicy{
		MaxRetries: 20, BaseDelay: 2 * time.Millisecond, MaxDelay: 20 * time.Millisecond,
		Seed: 3, HandshakeTimeout: 250 * time.Millisecond,
	}, dialer)
	conn, err := dialer()
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Start(conn); err != nil {
		t.Fatal(err)
	}
	defer sw.Close()

	const probes = 150
	completed, lost := 0, 0
	for i := 0; i < probes; i++ {
		_, err := sw.InjectTimeout(universe.Tuple(flows.ID(i%3)), 25*time.Millisecond, 3)
		switch {
		case err == nil:
			completed++
		case errors.Is(err, ErrProbeTimeout) || errors.Is(err, ErrDisconnected):
			lost++ // explicit loss: the attacker's no-observation case
			time.Sleep(5 * time.Millisecond)
		default:
			// Transient send errors during an outage also classify as
			// lost probes.
			lost++
			time.Sleep(5 * time.Millisecond)
		}
	}
	if completed+lost != probes {
		t.Fatalf("accounting bug: %d + %d != %d", completed, lost, probes)
	}
	if completed < probes/2 {
		t.Fatalf("only %d/%d probes completed under 2%% loss", completed, probes)
	}
	t.Logf("chaos: %d completed, %d lost, reconnects=%d retries=%d dupes=%d",
		completed, lost,
		swReg.Snapshot().Counters["switch_reconnects_total"],
		swReg.Snapshot().Counters["switch_probe_retries_total"],
		reg.Snapshot().Counters["controller_packet_in_dupes_total"])
}

// tcpPair returns two connected TCP loopback conns (kernel-buffered, so
// simultaneous handshake writes cannot deadlock the way net.Pipe does).
func tcpPair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type accepted struct {
		c   net.Conn
		err error
	}
	ch := make(chan accepted, 1)
	go func() {
		c, err := ln.Accept()
		ch <- accepted{c, err}
	}()
	a, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	acc := <-ch
	if acc.err != nil {
		t.Fatal(acc.err)
	}
	return a, acc.c
}

// TestRecvTimeoutSilentPeer: a peer that handshakes and then goes
// silent must not hang a bounded read.
func TestRecvTimeoutSilentPeer(t *testing.T) {
	a, b := tcpPair(t)
	defer a.Close()
	defer b.Close()
	left, right := NewConn(a), NewConn(b)
	errs := make(chan error, 1)
	go func() { errs <- right.Handshake() }()
	if err := left.Handshake(); err != nil {
		t.Fatal(err)
	}
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	// The peer now says nothing. A bounded Recv must fail promptly...
	begin := time.Now()
	if _, _, err := left.RecvTimeout(50 * time.Millisecond); err == nil {
		t.Fatal("RecvTimeout returned a message from a silent peer")
	}
	if elapsed := time.Since(begin); elapsed > time.Second {
		t.Fatalf("RecvTimeout took %v", elapsed)
	}
	// ...and the deadline must be cleared for the next read.
	go func() { left.Send(&EchoRequest{Data: []byte("hi")}) }()
	msg, _, err := right.RecvTimeout(time.Second)
	if err != nil {
		t.Fatalf("post-timeout read: %v", err)
	}
	if msg.Type() != TypeEchoRequest {
		t.Fatalf("got %s", msg.Type())
	}
}

// TestDialDefaultTimeout: Dial now carries a bounded connect — verify
// it still connects normally and fails fast on a closed port.
func TestDialDefaultTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	go func() {
		c, err := ln.Accept()
		if err == nil {
			c.Close()
		}
	}()
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial live listener: %v", err)
	}
	c.Close()
	ln.Close()
	if _, err := Dial(addr); err == nil {
		t.Fatal("dial of a closed port succeeded")
	}
}
