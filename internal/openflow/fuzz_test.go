package openflow

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"flowrecon/internal/flows"
)

// byteStream adapts a byte slice into the io.ReadWriteCloser a Conn
// expects, so the fuzzer can feed arbitrary wire bytes through the real
// framing path (header read, length check, body read).
type byteStream struct {
	r *bytes.Reader
	w bytes.Buffer
}

func newByteStream(b []byte) *byteStream          { return &byteStream{r: bytes.NewReader(b)} }
func (s *byteStream) Read(p []byte) (int, error)  { return s.r.Read(p) }
func (s *byteStream) Write(p []byte) (int, error) { return s.w.Write(p) }
func (s *byteStream) Close() error                { return nil }

// fuzzSeedMessages is one well-formed instance of every message type the
// codec implements — the corpus the mutator starts from.
func fuzzSeedMessages() []Message {
	return []Message{
		&Hello{},
		&EchoRequest{Data: []byte("ping")},
		&EchoReply{Data: []byte("pong")},
		&FeaturesRequest{},
		&FeaturesReply{DatapathID: 0x42, NumBuffers: 256, NumTables: 1, Capabilities: 0x87, Actions: 0xFFF},
		&PacketIn{BufferID: 7, TotalLen: 16, InPort: 1, Reason: ReasonNoMatch, Data: EncodeTuple(flows.FiveTuple{Src: 0x0A000101, Dst: 0x0A000102, SrcPort: 1234, DstPort: 80, Proto: 6})},
		&FlowMod{Match: MatchForTuple(flows.FiveTuple{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Proto: 17}), Cookie: 5, Command: FlowModAdd, IdleTimeout: 10, Priority: 100},
		&FlowRemoved{Match: Match{NwSrc: 9}, Cookie: 2, Priority: 50, Reason: RemovedIdleTimeout, DurationSec: 12, IdleTimeout: 10, PacketCount: 3, ByteCount: 180},
		&PacketOut{BufferID: 0xFFFFFFFF, InPort: 2, Data: []byte{1, 2, 3}},
		&ErrorMsg{ErrType: 1, Code: 2, Data: []byte("bad")},
	}
}

// FuzzReadMessage drives arbitrary bytes through Conn.Recv — the exact
// code path a malicious or corrupted peer reaches over TCP. The property
// under test: the reader never panics, and any message it accepts
// round-trips (Encode → Decode reproduces the same message), so a decoded
// message can always be re-serialized for logging or forwarding.
func FuzzReadMessage(f *testing.F) {
	for i, m := range fuzzSeedMessages() {
		wire, err := Encode(m, uint32(i+1))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(wire)
	}
	// Adversarial seeds: truncated header, length below HeaderLen, length
	// beyond the stream, wrong version, unknown type.
	f.Add([]byte{0x01, 0x00})
	f.Add([]byte{0x01, 0x00, 0x00, 0x03, 0x00, 0x00, 0x00, 0x01})
	f.Add([]byte{0x01, 0x02, 0xFF, 0xFF, 0x00, 0x00, 0x00, 0x01})
	f.Add([]byte{0x04, 0x00, 0x00, 0x08, 0x00, 0x00, 0x00, 0x01})
	f.Add([]byte{0x01, 0x63, 0x00, 0x08, 0x00, 0x00, 0x00, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewConn(newByteStream(data))
		msg, h, err := c.Recv()
		if err != nil {
			return // rejection is fine; panics and hangs are the bugs
		}
		if msg == nil {
			t.Fatal("nil message with nil error")
		}
		if h.Length < HeaderLen || int(h.Length) > len(data) {
			t.Fatalf("accepted header length %d outside [8, %d]", h.Length, len(data))
		}
		wire, err := Encode(msg, h.XID)
		if err != nil {
			t.Fatalf("decoded message does not re-encode: %v", err)
		}
		again, h2, err := Decode(wire)
		if err != nil {
			t.Fatalf("re-encoded message does not decode: %v", err)
		}
		if h2.Type != h.Type || h2.XID != h.XID {
			t.Fatalf("header drift: %v/%d → %v/%d", h.Type, h.XID, h2.Type, h2.XID)
		}
		if !reflect.DeepEqual(msg, again) {
			t.Fatalf("round-trip drift:\n first %#v\nsecond %#v", msg, again)
		}
	})
}

// FuzzParsePacket drives arbitrary bytes through DecodeTuple, the parser
// for probe-packet payloads carried inside PACKET_IN/PACKET_OUT. Accepted
// tuples must survive an EncodeTuple → DecodeTuple round trip.
func FuzzParsePacket(f *testing.F) {
	f.Add(EncodeTuple(flows.FiveTuple{Src: 0x0A000101, Dst: 0x0A000102, SrcPort: 1234, DstPort: 80, Proto: 6}))
	f.Add(EncodeTuple(flows.FiveTuple{}))
	f.Add([]byte{})
	f.Add([]byte{0xFF})
	f.Add(bytes.Repeat([]byte{0xFF}, 32))

	f.Fuzz(func(t *testing.T, data []byte) {
		tup, err := DecodeTuple(data)
		if err != nil {
			return
		}
		again, err := DecodeTuple(EncodeTuple(tup))
		if err != nil {
			t.Fatalf("re-encoded tuple does not decode: %v", err)
		}
		if again != tup {
			t.Fatalf("round-trip drift: %+v → %+v", tup, again)
		}
	})
}

// TestFuzzSeedsDecode keeps the seed corpus honest under plain `go test`:
// every well-formed seed must decode to a DeepEqual copy of the message
// that produced it, and Conn.Recv over a stream carrying two seeds
// back-to-back must frame them correctly.
func TestFuzzSeedsDecode(t *testing.T) {
	seeds := fuzzSeedMessages()
	var stream []byte
	for i, m := range seeds {
		wire, err := Encode(m, uint32(i+1))
		if err != nil {
			t.Fatal(err)
		}
		got, h, err := Decode(wire)
		if err != nil {
			t.Fatalf("seed %d (%v): %v", i, m.Type(), err)
		}
		if h.XID != uint32(i+1) || !reflect.DeepEqual(m, got) {
			t.Fatalf("seed %d (%v) round-trip drift: %#v vs %#v", i, m.Type(), m, got)
		}
		stream = append(stream, wire...)
	}
	c := NewConn(newByteStream(stream))
	for i, m := range seeds {
		got, h, err := c.Recv()
		if err != nil {
			t.Fatalf("framing seed %d: %v", i, err)
		}
		if h.Type != m.Type() || !reflect.DeepEqual(m, got) {
			t.Fatalf("framing seed %d: got %v", i, h.Type)
		}
	}
	if _, _, err := c.Recv(); err == nil {
		t.Fatal("read past end of stream succeeded")
	} else if !bytes.Contains([]byte(err.Error()), []byte("read header")) {
		// EOF surfaces through the header read; anything else means the
		// framing consumed the wrong number of bytes somewhere upstream.
		t.Fatalf("stream desync: %v", err)
	}
}

var _ io.ReadWriteCloser = (*byteStream)(nil)
