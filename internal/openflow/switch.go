package openflow

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"flowrecon/internal/flows"
	"flowrecon/internal/flowtable"
	"flowrecon/internal/rules"
	"flowrecon/internal/telemetry"
)

// Switch is a user-space OpenFlow switch agent: it owns a flow table,
// answers lookups locally on a hit, and on a miss raises a PACKET_IN to
// the controller and blocks the packet until the FLOW_MOD / PACKET_OUT
// round trip completes — the delay that creates the paper's side channel.
type Switch struct {
	dpid     uint64
	rules    *rules.Set
	universe *flows.Universe
	conn     *Conn
	start    time.Time

	mu          sync.Mutex
	table       *flowtable.Table
	pending     map[uint32]chan bool     // buffer id → "rule installed?"
	pendingEcho map[uint32]chan struct{} // echo xid → reply arrival
	nextBuf     uint32

	reg *telemetry.Registry
	tm  switchMetrics // resolved instruments (zero = disabled)

	done chan struct{}
	err  error
}

// switchMetrics are the switch agent's telemetry instruments.
type switchMetrics struct {
	injects   *telemetry.Counter
	hits      *telemetry.Counter
	misses    *telemetry.Counter
	hitDelay  *telemetry.Histogram // seconds; effectively the hot-path cost
	missDelay *telemetry.Histogram // seconds; one controller round trip
	echoRTT   *telemetry.Histogram // seconds; control-channel echo RTT
	tracer    *telemetry.Tracer
	spans     *telemetry.SpanRecorder // wall-clock causal spans
}

// SetTelemetry attaches the switch (its flow table, its connection once
// established, and its probe/echo instruments) to a registry. Call before
// Connect/Start. A nil registry disables telemetry.
func (s *Switch) SetTelemetry(reg *telemetry.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reg = reg
	s.table.SetTelemetry(reg, "switch")
	s.tm = switchMetrics{
		injects:   reg.Counter("switch_injects_total"),
		hits:      reg.Counter("switch_inject_results_total", "result", "hit"),
		misses:    reg.Counter("switch_inject_results_total", "result", "miss"),
		hitDelay:  reg.Histogram("switch_inject_delay_seconds", nil, "result", "hit"),
		missDelay: reg.Histogram("switch_inject_delay_seconds", nil, "result", "miss"),
		echoRTT:   reg.Histogram("openflow_echo_rtt_seconds", nil),
		tracer:    reg.Tracer(),
		spans:     reg.Spans(),
	}
	if s.conn != nil {
		s.conn.SetTelemetry(reg, "switch")
	}
}

// traceProbe emits one probe lifecycle event.
func (s *Switch) traceProbe(kind string, rule int, delay time.Duration) {
	if s.tm.tracer == nil {
		return
	}
	e := telemetry.Ev(kind)
	e.Node = "switch"
	e.Rule = rule
	e.Value = delay.Seconds()
	s.tm.tracer.Emit(e)
}

// NewSwitch builds a switch over the shared policy. capacity and stepSec
// configure its flow table exactly as flowtable.New does.
func NewSwitch(dpid uint64, rs *rules.Set, universe *flows.Universe, capacity int, stepSec float64) (*Switch, error) {
	tbl, err := flowtable.New(rs, capacity, stepSec)
	if err != nil {
		return nil, err
	}
	s := &Switch{
		dpid:        dpid,
		rules:       rs,
		universe:    universe,
		table:       tbl,
		pending:     make(map[uint32]chan bool),
		pendingEcho: make(map[uint32]chan struct{}),
		start:       time.Now(),
		done:        make(chan struct{}),
	}
	// Report expirations and evictions to the controller, as OpenFlow's
	// OFPFF_SEND_FLOW_REM does.
	tbl.OnRemove = s.notifyRemoved
	return s, nil
}

// notifyRemoved sends a FLOW_REMOVED for a rule leaving the table.
func (s *Switch) notifyRemoved(ruleID int, reason flowtable.EvictionReason, now float64) {
	if s.conn == nil {
		return
	}
	r := s.rules.Rule(ruleID)
	msg := &FlowRemoved{
		Cookie:      uint64(ruleID),
		Priority:    uint16(r.Priority),
		DurationSec: uint32(now),
	}
	switch {
	case reason == flowtable.ReasonEvicted:
		msg.Reason = RemovedDelete
	case r.Kind == rules.HardTimeout:
		msg.Reason = RemovedHardTimeout
	default:
		msg.Reason = RemovedIdleTimeout
	}
	// Best effort: a failed notification surfaces via the receive loop.
	_, _ = s.conn.Send(msg)
}

// Connect dials the controller (bounded by DefaultHandshakeTimeout),
// handshakes, answers the features request, and starts the receive loop.
// Call Close to stop.
func (s *Switch) Connect(addr string) error {
	conn, err := DialTimeout(addr, DefaultHandshakeTimeout)
	if err != nil {
		return err
	}
	return s.Start(conn)
}

// Start runs the switch over an established connection (used directly in
// tests with a pipe transport).
func (s *Switch) Start(conn *Conn) error {
	s.conn = conn
	if s.reg != nil {
		conn.SetTelemetry(s.reg, "switch")
	}
	if err := conn.Handshake(); err != nil {
		conn.Close()
		return fmt.Errorf("switch handshake: %w", err)
	}
	go s.recvLoop()
	return nil
}

// Close tears down the connection and waits for the receive loop to exit.
func (s *Switch) Close() error {
	if s.conn == nil {
		return nil
	}
	err := s.conn.Close()
	<-s.done
	return err
}

// Err returns the receive loop's terminal error (nil until Close, or the
// underlying failure).
func (s *Switch) Err() error {
	select {
	case <-s.done:
		return s.err
	default:
		return nil
	}
}

func (s *Switch) now() float64 { return time.Since(s.start).Seconds() }

// recvLoop services controller-to-switch messages.
func (s *Switch) recvLoop() {
	defer close(s.done)
	for {
		msg, h, err := s.conn.Recv()
		if err != nil {
			s.err = err
			s.failPending()
			return
		}
		switch m := msg.(type) {
		case *FeaturesRequest:
			reply := &FeaturesReply{DatapathID: s.dpid, NumBuffers: 256, NumTables: 1}
			if err := s.conn.SendXID(reply, h.XID); err != nil {
				s.err = err
				return
			}
		case *EchoRequest:
			if err := s.conn.SendXID(&EchoReply{Data: m.Data}, h.XID); err != nil {
				s.err = err
				return
			}
		case *FlowMod:
			s.handleFlowMod(m)
		case *PacketOut:
			s.release(m.BufferID, false)
		case *EchoReply:
			s.releaseEcho(h.XID)
		case *Hello, *ErrorMsg:
			// ignored
		}
	}
}

// handleFlowMod installs (or deletes) the rule identified by the cookie
// and releases the buffered packet, if any.
func (s *Switch) handleFlowMod(m *FlowMod) {
	ruleID := int(m.Cookie)
	if ruleID < 0 || ruleID >= s.rules.Len() {
		return
	}
	s.mu.Lock()
	switch m.Command {
	case FlowModAdd:
		s.table.Install(ruleID, s.now())
	case FlowModDelete:
		s.table.Remove(ruleID, s.now())
	}
	s.mu.Unlock()
	if m.BufferID != 0 {
		s.release(m.BufferID, true)
	}
}

// release completes a blocked Inject call.
func (s *Switch) release(bufferID uint32, installed bool) {
	s.mu.Lock()
	ch, ok := s.pending[bufferID]
	if ok {
		delete(s.pending, bufferID)
	}
	s.mu.Unlock()
	if ok {
		ch <- installed
	}
}

// releaseEcho completes a blocked Echo call.
func (s *Switch) releaseEcho(xid uint32) {
	s.mu.Lock()
	ch, ok := s.pendingEcho[xid]
	if ok {
		delete(s.pendingEcho, xid)
	}
	s.mu.Unlock()
	if ok {
		close(ch)
	}
}

// failPending unblocks all waiters when the connection dies.
func (s *Switch) failPending() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, ch := range s.pending {
		delete(s.pending, id)
		close(ch)
	}
	for xid, ch := range s.pendingEcho {
		delete(s.pendingEcho, xid)
		close(ch)
	}
}

// ErrEchoTimeout is returned by Echo when the reply does not arrive in
// time.
var ErrEchoTimeout = errors.New("openflow: echo timed out")

// Echo measures one control-channel round trip: it sends an ECHO_REQUEST
// to the controller and blocks until the matching ECHO_REPLY or the
// timeout (0 = DefaultHandshakeTimeout). The RTT feeds the
// openflow_echo_rtt_seconds histogram.
func (s *Switch) Echo(timeout time.Duration) (time.Duration, error) {
	if timeout <= 0 {
		timeout = DefaultHandshakeTimeout
	}
	xid := s.conn.XID()
	ch := make(chan struct{})
	s.mu.Lock()
	s.pendingEcho[xid] = ch
	s.mu.Unlock()
	begin := time.Now()
	if err := s.conn.SendXID(&EchoRequest{}, xid); err != nil {
		s.releaseEcho(xid)
		return 0, err
	}
	select {
	case <-ch:
		rtt := time.Since(begin)
		s.tm.echoRTT.Observe(rtt.Seconds())
		s.traceProbe("echo.rtt", -1, rtt)
		return rtt, nil
	case <-time.After(timeout):
		s.releaseEcho(xid)
		return 0, ErrEchoTimeout
	case <-s.done:
		return 0, ErrDisconnected
	}
}

// InjectResult describes one packet's fate at the switch.
type InjectResult struct {
	// Hit reports whether a cached rule matched.
	Hit bool
	// RuleID is the matched or installed rule (-1 if the policy covers
	// no rule for the flow).
	RuleID int
	// Delay is the observed forwarding delay: effectively zero on a hit,
	// one controller round trip on a miss. This is the side channel.
	Delay time.Duration
}

// ErrDisconnected is returned by Inject when the controller connection
// fails mid-request.
var ErrDisconnected = errors.New("openflow: controller connection lost")

// Inject offers a packet to the switch, blocking through the controller
// round trip on a miss, and reports whether it hit plus the delay the
// packet suffered — the quantity the paper's attacker measures.
func (s *Switch) Inject(t flows.FiveTuple) (InjectResult, error) {
	fid, known := s.universe.Lookup(t)
	begin := time.Now()
	s.tm.injects.Inc()
	startSec := s.now()
	var inj telemetry.SpanID
	var injTrace int64
	if s.tm.spans != nil {
		injTrace = s.tm.spans.NewTrace()
		inj = s.tm.spans.Start(injTrace, 0, "inject", "switch", startSec)
		s.tm.spans.Annotate(inj, int(fid), -1, "")
	}
	if known {
		s.mu.Lock()
		ruleID, hit := s.table.Lookup(fid, s.now())
		s.mu.Unlock()
		if hit {
			delay := time.Since(begin)
			s.tm.hits.Inc()
			s.tm.hitDelay.Observe(delay.Seconds())
			s.traceProbe("probe.hit", ruleID, delay)
			if s.tm.spans != nil {
				s.tm.spans.Annotate(inj, -1, ruleID, "hit")
				s.tm.spans.End(inj, s.now())
			}
			return InjectResult{Hit: true, RuleID: ruleID, Delay: delay}, nil
		}
	}

	// Miss: buffer the packet and raise a PACKET_IN.
	s.mu.Lock()
	s.nextBuf++
	buf := s.nextBuf
	ch := make(chan bool, 1)
	s.pending[buf] = ch
	s.mu.Unlock()

	// The buffer id is the cross-wire correlation key: the controller
	// echoes it in its own decision span, so the two recorders' trees can
	// be joined without any wire-format change.
	var pinSpan telemetry.SpanID
	if s.tm.spans != nil {
		pinSpan = s.tm.spans.Start(injTrace, inj, "packet_in", "switch", s.now())
		s.tm.spans.Annotate(pinSpan, int(fid), -1, fmt.Sprintf("buffer=%d", buf))
	}
	pin := &PacketIn{BufferID: buf, TotalLen: uint16(tupleLen), Reason: ReasonNoMatch, Data: EncodeTuple(t)}
	if _, err := s.conn.Send(pin); err != nil {
		s.release(buf, false)
		<-ch
		return InjectResult{}, err
	}
	installed, ok := <-ch
	if !ok {
		return InjectResult{}, ErrDisconnected
	}
	res := InjectResult{Hit: false, RuleID: -1, Delay: time.Since(begin)}
	if installed && known {
		if j, covered := s.rules.HighestCovering(fid); covered {
			res.RuleID = j
		}
	}
	s.tm.misses.Inc()
	s.tm.missDelay.Observe(res.Delay.Seconds())
	s.traceProbe("probe.miss", res.RuleID, res.Delay)
	if s.tm.spans != nil {
		end := s.now()
		s.tm.spans.Annotate(pinSpan, -1, res.RuleID, "")
		s.tm.spans.End(pinSpan, end)
		s.tm.spans.Annotate(inj, -1, res.RuleID, "miss")
		s.tm.spans.End(inj, end)
	}
	return res, nil
}

// ExpireAll clears the flow table — a measurement helper standing in for
// the passage of every timeout (used to alternate hit/miss samples in the
// latency experiment).
func (s *Switch) ExpireAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	for _, id := range s.table.Cached(now) {
		s.table.Remove(id, now)
	}
}

// CachedRules returns the rule IDs presently cached (for tests and
// diagnostics).
func (s *Switch) CachedRules() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.table.Cached(s.now())
}
