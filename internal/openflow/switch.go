package openflow

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"flowrecon/internal/flows"
	"flowrecon/internal/flowtable"
	"flowrecon/internal/rules"
	"flowrecon/internal/stats"
	"flowrecon/internal/telemetry"
)

// Span-ID namespaces for the two TCP daemons (telemetry.SetNamespace):
// with disjoint namespaces the switch's and controller's span JSONL
// streams concatenate into one joined forest per probe, no remapping.
const (
	SpanNamespaceSwitch     = 1
	SpanNamespaceController = 2
)

// Switch is a user-space OpenFlow switch agent: it owns a flow table,
// answers lookups locally on a hit, and on a miss raises a PACKET_IN to
// the controller and blocks the packet until the FLOW_MOD / PACKET_OUT
// round trip completes — the delay that creates the paper's side channel.
type Switch struct {
	dpid     uint64
	rules    *rules.Set
	universe *flows.Universe
	start    time.Time

	connMu sync.Mutex // guards the conn pointer across reconnects
	conn   *Conn

	mu          sync.Mutex
	table       *flowtable.Table
	pending     map[uint32]chan bool     // buffer id → "rule installed?"
	pendingEcho map[uint32]chan struct{} // echo xid → reply arrival
	nextBuf     uint32

	// Reconnection state (see ReconnectPolicy). dialer re-establishes the
	// control channel; nil disables reconnection (the pre-existing
	// fail-fast behavior).
	pol     ReconnectPolicy
	dialer  func() (*Conn, error)
	backoff *stats.RNG // jitter stream, seeded for reproducible schedules
	closed  atomic.Bool
	stop    chan struct{}

	reg *telemetry.Registry
	tm  switchMetrics // resolved instruments (zero = disabled)

	done chan struct{}
	err  error
}

// switchMetrics are the switch agent's telemetry instruments.
type switchMetrics struct {
	injects       *telemetry.Counter
	hits          *telemetry.Counter
	misses        *telemetry.Counter
	hitDelay      *telemetry.Histogram // seconds; effectively the hot-path cost
	missDelay     *telemetry.Histogram // seconds; one controller round trip
	echoRTT       *telemetry.Histogram // seconds; control-channel echo RTT
	reconnects    *telemetry.Counter   // successful control-channel re-establishments
	probeRetries  *telemetry.Counter   // PACKET_IN retransmissions
	probeTimeouts *telemetry.Counter   // probes abandoned after all retries
	tracer        *telemetry.Tracer
	spans         *telemetry.SpanRecorder // wall-clock causal spans
	events        *telemetry.EventLog     // wide events (probe outcomes, reconnects)
}

// SetTelemetry attaches the switch (its flow table, its connection once
// established, and its probe/echo instruments) to a registry. Call before
// Connect/Start. A nil registry disables telemetry.
func (s *Switch) SetTelemetry(reg *telemetry.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reg = reg
	s.table.SetTelemetry(reg, "switch")
	s.tm = switchMetrics{
		injects:       reg.Counter("switch_injects_total"),
		hits:          reg.Counter("switch_inject_results_total", "result", "hit"),
		misses:        reg.Counter("switch_inject_results_total", "result", "miss"),
		hitDelay:      reg.Histogram("switch_inject_delay_seconds", nil, "result", "hit"),
		missDelay:     reg.Histogram("switch_inject_delay_seconds", nil, "result", "miss"),
		echoRTT:       reg.Histogram("openflow_echo_rtt_seconds", nil),
		reconnects:    reg.Counter("switch_reconnects_total"),
		probeRetries:  reg.Counter("switch_probe_retries_total"),
		probeTimeouts: reg.Counter("switch_probe_timeouts_total"),
		tracer:        reg.Tracer(),
		spans:         reg.Spans(),
		events:        reg.Events(),
	}
	if c := s.currentConn(); c != nil {
		c.SetTelemetry(reg, "switch")
	}
}

// traceProbe emits one probe lifecycle event.
func (s *Switch) traceProbe(kind string, rule int, delay time.Duration) {
	if s.tm.tracer == nil {
		return
	}
	e := telemetry.Ev(kind)
	e.Node = "switch"
	e.Rule = rule
	e.Value = delay.Seconds()
	s.tm.tracer.Emit(e)
}

// NewSwitch builds a switch over the shared policy. capacity and stepSec
// configure its flow table exactly as flowtable.New does.
func NewSwitch(dpid uint64, rs *rules.Set, universe *flows.Universe, capacity int, stepSec float64) (*Switch, error) {
	tbl, err := flowtable.New(rs, capacity, stepSec)
	if err != nil {
		return nil, err
	}
	s := &Switch{
		dpid:        dpid,
		rules:       rs,
		universe:    universe,
		table:       tbl,
		pending:     make(map[uint32]chan bool),
		pendingEcho: make(map[uint32]chan struct{}),
		start:       time.Now(),
		done:        make(chan struct{}),
		stop:        make(chan struct{}),
	}
	// Report expirations and evictions to the controller, as OpenFlow's
	// OFPFF_SEND_FLOW_REM does.
	tbl.OnRemove = s.notifyRemoved
	return s, nil
}

// currentConn returns the live control-channel connection (nil before
// Start). Reconnection swaps the pointer, so writers must fetch it per
// operation rather than caching it.
func (s *Switch) currentConn() *Conn {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	return s.conn
}

func (s *Switch) setConn(c *Conn) {
	s.connMu.Lock()
	s.conn = c
	s.connMu.Unlock()
}

// notifyRemoved sends a FLOW_REMOVED for a rule leaving the table.
func (s *Switch) notifyRemoved(ruleID int, reason flowtable.EvictionReason, now float64) {
	conn := s.currentConn()
	if conn == nil {
		return
	}
	r := s.rules.Rule(ruleID)
	msg := &FlowRemoved{
		Cookie:      uint64(ruleID),
		Priority:    uint16(r.Priority),
		DurationSec: uint32(now),
	}
	switch {
	case reason == flowtable.ReasonEvicted:
		msg.Reason = RemovedDelete
	case r.Kind == rules.HardTimeout:
		msg.Reason = RemovedHardTimeout
	default:
		msg.Reason = RemovedIdleTimeout
	}
	// Best effort: a failed notification surfaces via the receive loop.
	_, _ = conn.Send(msg)
}

// ReconnectPolicy arms the switch's control-channel self-healing: when
// the connection to the controller dies (or an injected fault resets
// it), the receive loop redials with capped exponential backoff and
// jittered retry instead of failing the daemon. The zero value disables
// reconnection, preserving the original fail-fast behavior.
type ReconnectPolicy struct {
	// MaxRetries bounds redial attempts per outage (0 = no reconnect).
	MaxRetries int
	// BaseDelay is the first backoff delay (default 50ms); each retry
	// doubles it up to MaxDelay (default 2s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// JitterFrac spreads each delay uniformly by ±frac (default 0.2) so
	// a fleet of switches does not redial in lockstep.
	JitterFrac float64
	// Seed drives the jitter stream; equal seeds give identical backoff
	// schedules, keeping chaos tests reproducible.
	Seed int64
	// HandshakeTimeout bounds the HELLO exchange on each redial
	// (default DefaultHandshakeTimeout). A lossy channel can eat a HELLO;
	// the bound turns that into one more failed attempt instead of a
	// wedged reconnect loop.
	HandshakeTimeout time.Duration
}

func (p ReconnectPolicy) enabled() bool { return p.MaxRetries > 0 }

func (p ReconnectPolicy) withDefaults() ReconnectPolicy {
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.JitterFrac <= 0 {
		p.JitterFrac = 0.2
	}
	if p.HandshakeTimeout <= 0 {
		p.HandshakeTimeout = DefaultHandshakeTimeout
	}
	return p
}

// SetReconnect arms reconnection with the given policy and dialer (the
// function that re-establishes the raw control channel). Call before
// Start/Connect.
func (s *Switch) SetReconnect(pol ReconnectPolicy, dialer func() (*Conn, error)) {
	s.pol = pol.withDefaults()
	s.dialer = dialer
	s.backoff = stats.NewRNG(pol.Seed)
}

// ErrClosed is returned when an operation races with Close.
var ErrClosed = errors.New("openflow: switch closed")

// ConnectWithRetry dials the controller like Connect but arms the
// reconnect policy, retrying both the initial connect and any later
// outage with capped exponential backoff.
func (s *Switch) ConnectWithRetry(addr string, pol ReconnectPolicy) error {
	s.SetReconnect(pol, func() (*Conn, error) { return DialTimeout(addr, DefaultDialTimeout) })
	conn, err := s.dialer()
	if err != nil {
		conn, err = s.redial(false)
		if err != nil {
			return err
		}
		return s.startConn(conn)
	}
	return s.Start(conn)
}

// redial re-establishes the control channel under the reconnect policy:
// sleep (with jitter), dial, handshake; double the delay on failure up
// to the cap. countReconnect marks successful attempts in the
// switch_reconnects_total series (false during the initial connect).
func (s *Switch) redial(countReconnect bool) (*Conn, error) {
	delay := s.pol.BaseDelay
	var lastErr error
	for attempt := 0; attempt < s.pol.MaxRetries; attempt++ {
		d := delay
		if s.backoff != nil {
			d = time.Duration(float64(d) * (1 + s.pol.JitterFrac*(2*s.backoff.Float64()-1)))
		}
		select {
		case <-time.After(d):
		case <-s.stop:
			return nil, ErrClosed
		}
		conn, err := s.dialer()
		if err == nil {
			if s.reg != nil {
				conn.SetTelemetry(s.reg, "switch")
			}
			if herr := conn.HandshakeTimeout(s.pol.HandshakeTimeout); herr == nil {
				if countReconnect {
					s.tm.reconnects.Inc()
					ev := telemetry.NewWideEvent("switch.reconnect")
					ev.Node = "switch"
					ev.T = s.now()
					ev.Detail = fmt.Sprintf("attempt=%d", attempt+1)
					s.tm.events.Emit(ev)
				}
				return conn, nil
			} else {
				lastErr = herr
				conn.Close()
			}
		} else {
			lastErr = err
		}
		delay *= 2
		if delay > s.pol.MaxDelay {
			delay = s.pol.MaxDelay
		}
	}
	return nil, fmt.Errorf("switch reconnect: %d attempts exhausted: %w", s.pol.MaxRetries, lastErr)
}

// startConn installs an already-handshaken connection and starts the
// receive loop (the tail of ConnectWithRetry's retry path).
func (s *Switch) startConn(conn *Conn) error {
	s.setConn(conn)
	go s.recvLoop()
	return nil
}

// Connect dials the controller (bounded by DefaultHandshakeTimeout),
// handshakes, answers the features request, and starts the receive loop.
// Call Close to stop.
func (s *Switch) Connect(addr string) error {
	conn, err := DialTimeout(addr, DefaultHandshakeTimeout)
	if err != nil {
		return err
	}
	return s.Start(conn)
}

// Start runs the switch over an established connection (used directly in
// tests with a pipe transport).
func (s *Switch) Start(conn *Conn) error {
	s.setConn(conn)
	if s.reg != nil {
		conn.SetTelemetry(s.reg, "switch")
	}
	if err := conn.Handshake(); err != nil {
		conn.Close()
		return fmt.Errorf("switch handshake: %w", err)
	}
	go s.recvLoop()
	return nil
}

// Close tears down the connection, cancels any in-flight reconnect
// backoff, and waits for the receive loop to exit.
func (s *Switch) Close() error {
	conn := s.currentConn()
	if conn == nil {
		return nil
	}
	if s.closed.CompareAndSwap(false, true) {
		close(s.stop)
	}
	err := conn.Close()
	<-s.done
	return err
}

// Err returns the receive loop's terminal error (nil until Close, or the
// underlying failure).
func (s *Switch) Err() error {
	select {
	case <-s.done:
		return s.err
	default:
		return nil
	}
}

func (s *Switch) now() float64 { return time.Since(s.start).Seconds() }

// recvLoop services controller-to-switch messages. When a reconnect
// policy is armed, a dead connection fails the in-flight waiters (they
// see an explicit loss, never a hang) and the loop redials with backoff
// instead of exiting.
func (s *Switch) recvLoop() {
	defer close(s.done)
	for {
		conn := s.currentConn()
		msg, h, err := conn.Recv()
		if err != nil {
			s.failPending()
			if s.closed.Load() || !s.pol.enabled() || s.dialer == nil {
				s.err = err
				return
			}
			conn.Close()
			next, rerr := s.redial(true)
			if rerr != nil {
				s.err = rerr
				return
			}
			s.setConn(next)
			continue
		}
		// A failed send means the connection is broken; the next Recv
		// surfaces it, so handler errors just cycle the loop.
		switch m := msg.(type) {
		case *FeaturesRequest:
			reply := &FeaturesReply{DatapathID: s.dpid, NumBuffers: 256, NumTables: 1}
			_ = conn.SendXID(reply, h.XID)
		case *EchoRequest:
			_ = conn.SendXID(&EchoReply{Data: m.Data}, h.XID)
		case *FlowMod:
			s.handleFlowMod(m)
		case *PacketOut:
			s.release(m.BufferID, false)
		case *EchoReply:
			s.releaseEcho(h.XID)
		case *Hello, *ErrorMsg:
			// ignored
		}
	}
}

// handleFlowMod installs (or deletes) the rule identified by the cookie
// and releases the buffered packet, if any.
func (s *Switch) handleFlowMod(m *FlowMod) {
	ruleID := int(m.Cookie)
	if ruleID < 0 || ruleID >= s.rules.Len() {
		return
	}
	s.mu.Lock()
	switch m.Command {
	case FlowModAdd:
		s.table.Install(ruleID, s.now())
	case FlowModDelete:
		s.table.Remove(ruleID, s.now())
	}
	s.mu.Unlock()
	if m.BufferID != 0 {
		s.release(m.BufferID, true)
	}
}

// release completes a blocked Inject call.
func (s *Switch) release(bufferID uint32, installed bool) {
	s.mu.Lock()
	ch, ok := s.pending[bufferID]
	if ok {
		delete(s.pending, bufferID)
	}
	s.mu.Unlock()
	if ok {
		ch <- installed
	}
}

// releaseEcho completes a blocked Echo call.
func (s *Switch) releaseEcho(xid uint32) {
	s.mu.Lock()
	ch, ok := s.pendingEcho[xid]
	if ok {
		delete(s.pendingEcho, xid)
	}
	s.mu.Unlock()
	if ok {
		close(ch)
	}
}

// abandon discards a pending buffer without completing the waiter (the
// waiter itself timed out and is walking away).
func (s *Switch) abandon(bufferID uint32) {
	s.mu.Lock()
	delete(s.pending, bufferID)
	s.mu.Unlock()
}

// failPending unblocks all waiters when the connection dies.
func (s *Switch) failPending() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, ch := range s.pending {
		delete(s.pending, id)
		close(ch)
	}
	for xid, ch := range s.pendingEcho {
		delete(s.pendingEcho, xid)
		close(ch)
	}
}

// ErrEchoTimeout is returned by Echo when the reply does not arrive in
// time.
var ErrEchoTimeout = errors.New("openflow: echo timed out")

// Echo measures one control-channel round trip: it sends an ECHO_REQUEST
// to the controller and blocks until the matching ECHO_REPLY or the
// timeout (0 = DefaultHandshakeTimeout). The RTT feeds the
// openflow_echo_rtt_seconds histogram.
func (s *Switch) Echo(timeout time.Duration) (time.Duration, error) {
	if timeout <= 0 {
		timeout = DefaultHandshakeTimeout
	}
	conn := s.currentConn()
	xid := conn.XID()
	ch := make(chan struct{})
	s.mu.Lock()
	s.pendingEcho[xid] = ch
	s.mu.Unlock()
	begin := time.Now()
	if err := conn.SendXID(&EchoRequest{}, xid); err != nil {
		s.releaseEcho(xid)
		return 0, err
	}
	select {
	case <-ch:
		rtt := time.Since(begin)
		s.tm.echoRTT.Observe(rtt.Seconds())
		s.traceProbe("echo.rtt", -1, rtt)
		return rtt, nil
	case <-time.After(timeout):
		s.releaseEcho(xid)
		return 0, ErrEchoTimeout
	case <-s.done:
		return 0, ErrDisconnected
	}
}

// InjectResult describes one packet's fate at the switch.
type InjectResult struct {
	// Hit reports whether a cached rule matched.
	Hit bool
	// RuleID is the matched or installed rule (-1 if the policy covers
	// no rule for the flow).
	RuleID int
	// Delay is the observed forwarding delay: effectively zero on a hit,
	// one controller round trip on a miss. This is the side channel.
	Delay time.Duration
}

// ErrDisconnected is returned by Inject when the controller connection
// fails mid-request.
var ErrDisconnected = errors.New("openflow: controller connection lost")

// ErrProbeTimeout is returned by InjectTimeout when no controller
// response arrives within the deadline after all retransmissions — the
// TCP substrate's "lost probe" signal. Attackers classify it as an
// explicit no-observation instead of wedging the trial.
var ErrProbeTimeout = errors.New("openflow: probe timed out")

// Inject offers a packet to the switch, blocking through the controller
// round trip on a miss, and reports whether it hit plus the delay the
// packet suffered — the quantity the paper's attacker measures.
func (s *Switch) Inject(t flows.FiveTuple) (InjectResult, error) {
	return s.InjectTimeout(t, 0, 0)
}

// InjectTimeout is Inject with a per-wait deadline and PACKET_IN
// retransmission: when the controller response does not arrive within
// timeout, the same buffered PACKET_IN (same buffer id, so the
// controller can dedup the retransmit) is resent up to retries times
// before the probe is abandoned with ErrProbeTimeout. timeout ≤ 0 waits
// forever (the original Inject behavior).
func (s *Switch) InjectTimeout(t flows.FiveTuple, timeout time.Duration, retries int) (InjectResult, error) {
	fid, known := s.universe.Lookup(t)
	begin := time.Now()
	s.tm.injects.Inc()
	startSec := s.now()
	var inj telemetry.SpanID
	var injTrace int64
	if s.tm.spans != nil {
		injTrace = s.tm.spans.NewTrace()
		inj = s.tm.spans.Start(injTrace, 0, "inject", "switch", startSec)
		s.tm.spans.Annotate(inj, int(fid), -1, "")
	}
	if known {
		s.mu.Lock()
		ruleID, hit := s.table.Lookup(fid, s.now())
		s.mu.Unlock()
		if hit {
			delay := time.Since(begin)
			s.tm.hits.Inc()
			s.tm.hitDelay.Observe(delay.Seconds())
			s.traceProbe("probe.hit", ruleID, delay)
			if s.tm.spans != nil {
				s.tm.spans.Annotate(inj, -1, ruleID, "hit")
				s.tm.spans.End(inj, s.now())
			}
			if s.tm.events != nil {
				ev := telemetry.NewWideEvent("switch.probe")
				ev.Node = "switch"
				ev.T = s.now()
				ev.Flow = int(fid)
				ev.Rule = ruleID
				ev.Trace = injTrace
				ev.Outcome = "hit"
				ev.DelayMs = float64(delay) / float64(time.Millisecond)
				s.tm.events.Emit(ev)
			}
			return InjectResult{Hit: true, RuleID: ruleID, Delay: delay}, nil
		}
	}

	// Miss: buffer the packet and raise a PACKET_IN.
	s.mu.Lock()
	s.nextBuf++
	buf := s.nextBuf
	ch := make(chan bool, 1)
	s.pending[buf] = ch
	s.mu.Unlock()

	// The PACKET_IN carries the switch's SpanContext as a payload
	// side-band (see EncodeTupleContext), so the controller starts its
	// decision span under this packet_in span and the two processes'
	// streams merge into ONE tree per probe. The buffer id stays in the
	// detail string as a human-readable cross-check.
	var pinSpan telemetry.SpanID
	var pinCtx telemetry.SpanContext
	if s.tm.spans != nil {
		pinSpan, pinCtx = s.tm.spans.StartCtx(s.tm.spans.Context(injTrace, inj), "packet_in", "switch", s.now())
		s.tm.spans.Annotate(pinSpan, int(fid), -1, fmt.Sprintf("buffer=%d", buf))
	}
	// closeSpans ends both open spans on every exit path — a timed-out or
	// failed probe must leave a finished (annotated) tree, not orphans.
	closeSpans := func(ruleID int, detail string) {
		if s.tm.spans == nil {
			return
		}
		end := s.now()
		s.tm.spans.Annotate(pinSpan, -1, ruleID, "")
		s.tm.spans.End(pinSpan, end)
		s.tm.spans.Annotate(inj, -1, ruleID, detail)
		s.tm.spans.End(inj, end)
	}
	probeEvent := func(outcome string, ruleID int, delay time.Duration) {
		if s.tm.events == nil {
			return
		}
		ev := telemetry.NewWideEvent("switch.probe")
		ev.Node = "switch"
		ev.T = s.now()
		ev.Flow = int(fid)
		ev.Rule = ruleID
		ev.Trace = injTrace
		ev.Outcome = outcome
		ev.DelayMs = float64(delay) / float64(time.Millisecond)
		s.tm.events.Emit(ev)
	}
	payload := EncodeTupleContext(t, pinCtx)
	pin := &PacketIn{BufferID: buf, TotalLen: uint16(tupleLen), Reason: ReasonNoMatch, Data: payload}
	if _, err := s.currentConn().Send(pin); err != nil && timeout <= 0 {
		// No-deadline path: a send failure is terminal. Under a deadline
		// the retransmit loop below gets its chance (faults can drop the
		// first send and deliver a retry).
		s.release(buf, false)
		<-ch
		closeSpans(-1, "send_failed")
		probeEvent("send_failed", -1, time.Since(begin))
		return InjectResult{}, err
	}
	var installed, ok bool
	if timeout <= 0 {
		installed, ok = <-ch
	} else {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		attempts := 0
	wait:
		for {
			select {
			case installed, ok = <-ch:
				break wait
			case <-timer.C:
				if attempts >= retries {
					s.abandon(buf)
					s.tm.probeTimeouts.Inc()
					s.traceProbe("probe.lost", -1, timeout)
					closeSpans(-1, "timeout")
					probeEvent("timeout", -1, time.Since(begin))
					return InjectResult{}, ErrProbeTimeout
				}
				attempts++
				s.tm.probeRetries.Inc()
				// Retransmit with the identical buffer id; the
				// controller's dedup cache answers duplicates without
				// re-running the application.
				_, _ = s.currentConn().Send(pin)
				timer.Reset(timeout)
			}
		}
	}
	if !ok {
		closeSpans(-1, "disconnected")
		probeEvent("disconnected", -1, time.Since(begin))
		return InjectResult{}, ErrDisconnected
	}
	res := InjectResult{Hit: false, RuleID: -1, Delay: time.Since(begin)}
	if installed && known {
		if j, covered := s.rules.HighestCovering(fid); covered {
			res.RuleID = j
		}
	}
	s.tm.misses.Inc()
	s.tm.missDelay.Observe(res.Delay.Seconds())
	s.traceProbe("probe.miss", res.RuleID, res.Delay)
	closeSpans(res.RuleID, "miss")
	probeEvent("miss", res.RuleID, res.Delay)
	return res, nil
}

// ExpireAll clears the flow table — a measurement helper standing in for
// the passage of every timeout (used to alternate hit/miss samples in the
// latency experiment).
func (s *Switch) ExpireAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	for _, id := range s.table.Cached(now) {
		s.table.Remove(id, now)
	}
}

// CachedRules returns the rule IDs presently cached (for tests and
// diagnostics).
func (s *Switch) CachedRules() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.table.Cached(s.now())
}
