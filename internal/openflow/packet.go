package openflow

import (
	"encoding/binary"
	"fmt"

	"flowrecon/internal/flows"
	"flowrecon/internal/telemetry"
)

// tupleLen is the size of the serialized flow 5-tuple carried in
// PACKET_IN/PACKET_OUT data.
const tupleLen = 16

// EncodeTuple serializes a flow identifier into the packet payload carried
// by PACKET_IN and PACKET_OUT: src(4) dst(4) sport(2) dport(2) proto(1)
// pad(3).
func EncodeTuple(t flows.FiveTuple) []byte {
	buf := make([]byte, tupleLen)
	binary.BigEndian.PutUint32(buf[0:4], uint32(t.Src))
	binary.BigEndian.PutUint32(buf[4:8], uint32(t.Dst))
	binary.BigEndian.PutUint16(buf[8:10], t.SrcPort)
	binary.BigEndian.PutUint16(buf[10:12], t.DstPort)
	buf[12] = byte(t.Proto)
	return buf
}

// DecodeTuple parses a payload produced by EncodeTuple.
func DecodeTuple(buf []byte) (flows.FiveTuple, error) {
	if len(buf) < tupleLen {
		return flows.FiveTuple{}, fmt.Errorf("openflow: short packet payload (%d bytes)", len(buf))
	}
	return flows.FiveTuple{
		Src:     flows.IPv4(binary.BigEndian.Uint32(buf[0:4])),
		Dst:     flows.IPv4(binary.BigEndian.Uint32(buf[4:8])),
		SrcPort: binary.BigEndian.Uint16(buf[8:10]),
		DstPort: binary.BigEndian.Uint16(buf[10:12]),
		Proto:   flows.Proto(buf[12]),
	}, nil
}

// EncodeTupleContext serializes a flow identifier followed by a trace
// side-band carrying the sender's SpanContext, so the controller's
// decision span joins the switch's causal tree instead of starting its
// own root. An invalid (zero) context produces exactly EncodeTuple's
// bytes; peers that predate the side-band parse either form, because
// DecodeTuple reads only the leading tupleLen bytes.
func EncodeTupleContext(t flows.FiveTuple, sc telemetry.SpanContext) []byte {
	return sc.AppendBinary(EncodeTuple(t))
}

// DecodeTupleContext parses a payload produced by EncodeTupleContext (or
// EncodeTuple — the context is then the invalid zero value).
func DecodeTupleContext(buf []byte) (flows.FiveTuple, telemetry.SpanContext, error) {
	rest, sc, _ := telemetry.ParseSpanContext(buf)
	t, err := DecodeTuple(rest)
	return t, sc, err
}

// MatchForTuple renders a 5-tuple as an exact-match ofp_match, the shape
// Ryu uses for reactively installed microflow matches.
func MatchForTuple(t flows.FiveTuple) Match {
	return Match{
		DlType:  0x0800, // IPv4
		NwProto: byte(t.Proto),
		NwSrc:   uint32(t.Src),
		NwDst:   uint32(t.Dst),
		TpSrc:   t.SrcPort,
		TpDst:   t.DstPort,
	}
}
