package openflow

import (
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"flowrecon/internal/controller"
	"flowrecon/internal/detect"
	"flowrecon/internal/faults"
	"flowrecon/internal/flows"
	"flowrecon/internal/rules"
	"flowrecon/internal/telemetry"
)

// ControllerOptions tune the reactive controller.
type ControllerOptions struct {
	// ProcessingDelay is added before answering each PACKET_IN,
	// emulating controller compute time (Ryu's processing in the paper's
	// testbed) and doubling as the §VII-B "adding delays" countermeasure.
	ProcessingDelay time.Duration
	// StepSeconds converts rule timeouts (in model steps) to the seconds
	// carried in FLOW_MOD. Defaults to 1s per step.
	StepSeconds float64
	// Faults injects controller-side chaos: stalls and slowdown on the
	// decision path (per the profile's StallProb/StallMs/SlowFactor),
	// plus loss/jitter/resets on every accepted switch connection when
	// the controller listens. Zero profile = clean controller.
	Faults faults.Profile
}

// Controller is a reactive OpenFlow controller: on PACKET_IN it installs
// the highest-priority rule covering the packet's flow, then releases the
// packet — the Ryu application of §VI-A. Policy decisions are delegated
// to the shared controller application (internal/controller).
type Controller struct {
	app      *controller.Reactive
	universe *flows.Universe
	opts     ControllerOptions
	start    time.Time // span clock epoch

	ln     net.Listener
	wg     sync.WaitGroup
	closed atomic.Bool

	// flowRemovals counts FLOW_REMOVED notifications from switches.
	flowRemovals atomic.Int64

	reg *telemetry.Registry
	tm  ctlMetrics // resolved instruments (zero = disabled)

	det *detect.Detector // streaming anomaly detector (nil = off)
	flt *faults.Stream   // controller-side stall/slowdown injection (nil = clean)

	connMu sync.Mutex
	conns  map[*Conn]struct{}
}

// ctlMetrics are the TCP controller's telemetry instruments.
type ctlMetrics struct {
	connections   *telemetry.Counter
	flowRemovals  *telemetry.Counter
	packetInDupes *telemetry.Counter   // retransmitted PACKET_INs answered from the dedup cache
	serviceTime   *telemetry.Histogram // packet-in → flow-mod/packet-out, seconds
	tracer        *telemetry.Tracer
	spans         *telemetry.SpanRecorder // wall-clock causal spans
	events        *telemetry.EventLog     // wide events (decisions, dupes)
}

// SetTelemetry attaches the controller (its shared application plus every
// future switch connection) to a registry. Call before Listen/ServeConn.
// A nil registry disables telemetry.
func (c *Controller) SetTelemetry(reg *telemetry.Registry) {
	c.reg = reg
	if c.app != nil {
		c.app.SetTelemetry(reg)
	}
	c.tm = ctlMetrics{
		connections:   reg.Counter("controller_connections_total"),
		flowRemovals:  reg.Counter("controller_flow_removals_total"),
		packetInDupes: reg.Counter("controller_packet_in_dupes_total"),
		serviceTime:   reg.Histogram("controller_packet_in_service_seconds", nil),
		tracer:        reg.Tracer(),
		spans:         reg.Spans(),
		events:        reg.Events(),
	}
	c.flt.SetTelemetry(reg, "controller")
	c.flt.SetEventLog(reg.Events())
}

// NewController builds a controller over the shared policy.
func NewController(rs *rules.Set, universe *flows.Universe, opts ControllerOptions) *Controller {
	if opts.StepSeconds <= 0 {
		opts.StepSeconds = 1
	}
	var app *controller.Reactive
	if rs != nil {
		app = controller.New(rs, controller.Options{ProcessingDelay: opts.ProcessingDelay})
	}
	return &Controller{
		app: app, universe: universe, opts: opts, start: time.Now(),
		conns: make(map[*Conn]struct{}),
		flt:   opts.Faults.Stream(-1), // controller substream; conns use 0,1,...
	}
}

// now returns seconds since the controller's span epoch.
func (c *Controller) now() float64 { return time.Since(c.start).Seconds() }

// SetDetector attaches a streaming timing-anomaly detector: every
// PACKET_IN of a known flow becomes one detector observation, stamped
// with the controller's span clock. The TCP observation point sees
// misses exclusively (hits never leave the switch), so configs for this
// substrate must keep the miss-skew scorer disabled (the default). Call
// before Listen/ServeConn; nil detaches.
func (c *Controller) SetDetector(d *detect.Detector) { c.det = d }

// Detector returns the attached detector (nil when detached).
func (c *Controller) Detector() *detect.Detector { return c.det }

// PacketIns returns the number of PACKET_IN messages processed.
func (c *Controller) PacketIns() int64 {
	if c.app == nil {
		return 0
	}
	return c.app.Snapshot().PacketIns
}

// FlowRemovals returns the number of FLOW_REMOVED notifications received.
func (c *Controller) FlowRemovals() int64 { return c.flowRemovals.Load() }

// Listen starts accepting switch connections on addr ("127.0.0.1:0" for an
// ephemeral test port) and returns the bound address.
func (c *Controller) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("controller listen: %w", err)
	}
	// Fault-wrap the listener so every accepted switch connection carries
	// its own seeded loss/jitter/reset stream (no-op for a clean profile).
	c.ln = faults.WrapListener(ln, c.opts.Faults)
	c.wg.Add(1)
	go c.acceptLoop()
	return ln.Addr().String(), nil
}

// Close stops the listener, closes every switch connection, and waits for
// connection handlers to finish.
func (c *Controller) Close() error {
	c.closed.Store(true)
	var err error
	if c.ln != nil {
		err = c.ln.Close()
	}
	c.connMu.Lock()
	for conn := range c.conns {
		conn.Close()
	}
	c.connMu.Unlock()
	c.wg.Wait()
	return err
}

func (c *Controller) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.ServeConn(NewConn(conn))
		}()
	}
}

// ServeConn drives one switch connection to completion (used directly in
// tests with a pipe transport).
func (c *Controller) ServeConn(conn *Conn) {
	if c.reg != nil {
		conn.SetTelemetry(c.reg, "controller")
	}
	c.tm.connections.Inc()
	c.connMu.Lock()
	c.conns[conn] = struct{}{}
	c.connMu.Unlock()
	defer func() {
		conn.Close()
		c.connMu.Lock()
		delete(c.conns, conn)
		c.connMu.Unlock()
	}()
	if err := conn.Handshake(); err != nil {
		return
	}
	// Solicit the datapath features, as a real controller does.
	if _, err := conn.Send(&FeaturesRequest{}); err != nil {
		return
	}
	// dedup remembers recently answered PACKET_IN buffer ids so a
	// retransmitted probe (the switch's InjectTimeout resend after a lost
	// message) is answered from cache instead of re-running the
	// application — at most one rule install per buffered packet.
	dedup := newDedupCache(256)
	for {
		msg, h, err := conn.Recv()
		if err != nil {
			return
		}
		switch m := msg.(type) {
		case *PacketIn:
			if reply, dup := dedup.lookup(m.BufferID); dup {
				c.tm.packetInDupes.Inc()
				if reply != nil {
					if _, err := conn.Send(reply); err != nil {
						return
					}
				}
				continue
			}
			begin := time.Now()
			reply, err := c.handlePacketIn(conn, m)
			if err != nil {
				return
			}
			dedup.store(m.BufferID, reply)
			c.tm.serviceTime.Observe(time.Since(begin).Seconds())
		case *EchoRequest:
			if err := conn.SendXID(&EchoReply{Data: m.Data}, h.XID); err != nil {
				return
			}
		case *FlowRemoved:
			c.flowRemovals.Add(1)
			c.tm.flowRemovals.Inc()
			c.traceRemoved(m)
		case *FeaturesReply, *Hello, *EchoReply, *ErrorMsg:
			// informational
		}
	}
}

// traceRemoved emits one flow-removal notification event.
func (c *Controller) traceRemoved(m *FlowRemoved) {
	if c.tm.tracer == nil {
		return
	}
	kind := "rule.expire"
	if m.Reason == RemovedDelete {
		kind = "rule.evict"
	}
	e := telemetry.Ev(kind)
	e.Node = "controller"
	e.Rule = int(m.Cookie)
	e.Detail = "flow_removed"
	c.tm.tracer.Emit(e)
}

// dedupCache is a bounded FIFO memory of answered PACKET_IN buffer ids
// and the replies they got, serving controller-side retransmit dedup.
// Buffer ids from one switch are monotonically increasing and never
// reused, so a hit can only be a genuine retransmission.
type dedupCache struct {
	cap   int
	order []uint32
	seen  map[uint32]Message
}

func newDedupCache(cap int) *dedupCache {
	return &dedupCache{cap: cap, seen: make(map[uint32]Message, cap)}
}

func (d *dedupCache) lookup(buf uint32) (Message, bool) {
	m, ok := d.seen[buf]
	return m, ok
}

func (d *dedupCache) store(buf uint32, reply Message) {
	if _, ok := d.seen[buf]; ok {
		return
	}
	if len(d.order) >= d.cap {
		oldest := d.order[0]
		d.order = d.order[1:]
		delete(d.seen, oldest)
	}
	d.order = append(d.order, buf)
	d.seen[buf] = reply
}

// handlePacketIn implements the reactive rule setup of Figure 1 (steps
// b–e): ask the controller application for a decision, install the chosen
// rule with its timeouts, and release the buffered packet. It returns
// the reply it sent so ServeConn can answer retransmissions from cache.
func (c *Controller) handlePacketIn(conn *Conn, m *PacketIn) (Message, error) {
	tuple, sc, err := DecodeTupleContext(m.Data)
	if err != nil {
		return nil, conn.SendXID(&ErrorMsg{ErrType: 1, Code: 0}, 0)
	}
	// Injected controller chaos: an occasional hard stall before any
	// processing, modelling a busy or GC-pausing control plane.
	if st := c.flt.StallMs(); st > 0 {
		time.Sleep(time.Duration(st * float64(time.Millisecond)))
	}
	fid, known := c.universe.Lookup(tuple)
	if known {
		// Every PACKET_IN is by definition a table miss; RTT is the
		// switch's side of the channel and unknown here.
		c.det.Observe(int(fid), c.now(), math.NaN(), false)
	}
	// When the PACKET_IN carries the switch's SpanContext side-band, the
	// decision span adopts its trace and parents itself under the
	// switch-side packet_in span: the two processes' streams concatenate
	// into one joined tree per probe. Legacy payloads without the
	// side-band fall back to a fresh root correlated by buffer id.
	var dec telemetry.SpanID
	var decTrace int64
	if c.tm.spans != nil {
		if sc.Valid() {
			decTrace = sc.Trace
			dec = c.tm.spans.Start(sc.Trace, sc.Parent, "controller.decision", "controller", c.now())
		} else {
			decTrace = c.tm.spans.NewTrace()
			dec = c.tm.spans.Start(decTrace, 0, "controller.decision", "controller", c.now())
		}
		c.tm.spans.Annotate(dec, int(fid), -1, fmt.Sprintf("buffer=%d", m.BufferID))
		if c.det != nil && known {
			if asc := c.det.Score(int(fid)); asc >= 1 {
				c.tm.spans.Annotate(dec, -1, -1, fmt.Sprintf("anomaly=%.2f", asc))
			}
		}
	}
	if known {
		decision := c.app.OnPacketIn(fid)
		delay := decision.Delay
		if c.flt != nil {
			// Slowdown scales the decision latency (SlowFactor × delay).
			delay = time.Duration(c.flt.SlowMs(float64(delay)/float64(time.Millisecond)) * float64(time.Millisecond))
		}
		if delay > 0 {
			time.Sleep(delay)
		}
		if decision.Install {
			r := c.app.Policy().Rule(decision.RuleID)
			fm := &FlowMod{
				Match:    MatchForTuple(tuple),
				Cookie:   uint64(decision.RuleID),
				Command:  FlowModAdd,
				Priority: uint16(r.Priority),
				BufferID: m.BufferID,
			}
			secs := timeoutSeconds(r.Timeout, c.opts.StepSeconds)
			if r.Kind == rules.HardTimeout {
				fm.HardTimeout = secs
			} else {
				fm.IdleTimeout = secs
			}
			// Installing with the buffer id releases the packet at the
			// switch; no separate PACKET_OUT is needed.
			_, err := conn.Send(fm)
			if c.tm.spans != nil {
				end := c.now()
				fms := c.tm.spans.Start(decTrace, dec, "flow_mod", "controller", end)
				c.tm.spans.Annotate(fms, int(fid), decision.RuleID, "install")
				c.tm.spans.End(fms, end)
				c.tm.spans.Annotate(dec, -1, decision.RuleID, "")
				c.tm.spans.End(dec, end)
			}
			c.decisionEvent(fid, decision.RuleID, decTrace, "install", delay)
			return fm, err
		}
	} else if c.opts.ProcessingDelay > 0 {
		time.Sleep(c.opts.ProcessingDelay)
	}
	// No covering rule: flood via the pre-installed default (release only).
	pout := &PacketOut{BufferID: m.BufferID, InPort: m.InPort, Data: m.Data}
	_, err = conn.Send(pout)
	if c.tm.spans != nil {
		end := c.now()
		po := c.tm.spans.Start(decTrace, dec, "packet_out", "controller", end)
		c.tm.spans.Annotate(po, int(fid), -1, "release")
		c.tm.spans.End(po, end)
		c.tm.spans.End(dec, end)
	}
	c.decisionEvent(fid, -1, decTrace, "release", 0)
	return pout, err
}

// decisionEvent emits one wide event per controller decision.
func (c *Controller) decisionEvent(fid flows.ID, ruleID int, trace int64, outcome string, delay time.Duration) {
	if c.tm.events == nil {
		return
	}
	ev := telemetry.NewWideEvent("controller.decision")
	ev.Node = "controller"
	ev.T = c.now()
	ev.Flow = int(fid)
	ev.Rule = ruleID
	ev.Trace = trace
	ev.Outcome = outcome
	ev.DelayMs = float64(delay) / float64(time.Millisecond)
	c.tm.events.Emit(ev)
}

func timeoutSeconds(steps int, stepSeconds float64) uint16 {
	s := float64(steps) * stepSeconds
	n := int(s)
	if float64(n) < s {
		n++
	}
	if n < 1 {
		n = 1
	}
	if n > 0xFFFF {
		n = 0xFFFF
	}
	return uint16(n)
}

// ErrNoListener is returned by Addr when the controller is not listening.
var ErrNoListener = errors.New("openflow: controller is not listening")

// Addr returns the bound listen address.
func (c *Controller) Addr() (string, error) {
	if c.ln == nil {
		return "", ErrNoListener
	}
	return c.ln.Addr().String(), nil
}
