// Package openflow implements the subset of the OpenFlow 1.0 protocol the
// paper's testbed relies on (the Ryu controller ↔ Open vSwitch channel):
// connection handshake, PACKET_IN, FLOW_MOD, PACKET_OUT, FLOW_REMOVED and
// ECHO, over TCP with the standard 8-byte header framing.
//
// The flow-match structure is wire-compatible with ofp_match; because this
// repository's rules are TCAM-style ternary masks (which OpenFlow 1.0's
// prefix-only nw_src wildcards cannot express), a FLOW_MOD additionally
// carries the rule's index in the shared policy as its cookie, and the
// switch resolves coverage through the shared rule set. See DESIGN.md.
package openflow

import (
	"encoding/binary"
	"fmt"
)

// Version is the OpenFlow protocol version implemented (1.0).
const Version byte = 0x01

// MsgType is the OpenFlow message type.
type MsgType byte

// The OpenFlow 1.0 message types this package implements.
const (
	TypeHello           MsgType = 0
	TypeError           MsgType = 1
	TypeEchoRequest     MsgType = 2
	TypeEchoReply       MsgType = 3
	TypeFeaturesRequest MsgType = 5
	TypeFeaturesReply   MsgType = 6
	TypePacketIn        MsgType = 10
	TypeFlowRemoved     MsgType = 11
	TypePacketOut       MsgType = 13
	TypeFlowMod         MsgType = 14
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case TypeHello:
		return "HELLO"
	case TypeError:
		return "ERROR"
	case TypeEchoRequest:
		return "ECHO_REQUEST"
	case TypeEchoReply:
		return "ECHO_REPLY"
	case TypeFeaturesRequest:
		return "FEATURES_REQUEST"
	case TypeFeaturesReply:
		return "FEATURES_REPLY"
	case TypePacketIn:
		return "PACKET_IN"
	case TypeFlowRemoved:
		return "FLOW_REMOVED"
	case TypePacketOut:
		return "PACKET_OUT"
	case TypeFlowMod:
		return "FLOW_MOD"
	default:
		return fmt.Sprintf("MsgType(%d)", byte(t))
	}
}

// HeaderLen is the fixed OpenFlow header size.
const HeaderLen = 8

// Header is the ofp_header preceding every message.
type Header struct {
	Version byte
	Type    MsgType
	Length  uint16 // total message length including the header
	XID     uint32 // transaction id
}

func (h Header) marshal(buf []byte) {
	buf[0] = h.Version
	buf[1] = byte(h.Type)
	binary.BigEndian.PutUint16(buf[2:4], h.Length)
	binary.BigEndian.PutUint32(buf[4:8], h.XID)
}

func parseHeader(buf []byte) (Header, error) {
	if len(buf) < HeaderLen {
		return Header{}, fmt.Errorf("openflow: short header (%d bytes)", len(buf))
	}
	h := Header{
		Version: buf[0],
		Type:    MsgType(buf[1]),
		Length:  binary.BigEndian.Uint16(buf[2:4]),
		XID:     binary.BigEndian.Uint32(buf[4:8]),
	}
	if h.Version != Version {
		return Header{}, fmt.Errorf("openflow: unsupported version 0x%02x", h.Version)
	}
	if int(h.Length) < HeaderLen {
		return Header{}, fmt.Errorf("openflow: bad length %d", h.Length)
	}
	return h, nil
}

// Message is a decoded OpenFlow message.
type Message interface {
	// Type returns the message's wire type.
	Type() MsgType
	// payload renders the body following the header.
	payload() []byte
	// parse fills the message from a body.
	parse(body []byte) error
}

// MatchLen is the ofp_match size in OpenFlow 1.0.
const MatchLen = 40

// Match is the ofp_match flow description. Only the fields this repository
// uses are named; the rest travel as zeros to keep the wire format intact.
type Match struct {
	Wildcards uint32
	InPort    uint16
	DlType    uint16
	NwProto   byte
	NwSrc     uint32
	NwDst     uint32
	TpSrc     uint16
	TpDst     uint16
}

func (m Match) marshal(buf []byte) {
	binary.BigEndian.PutUint32(buf[0:4], m.Wildcards)
	binary.BigEndian.PutUint16(buf[4:6], m.InPort)
	// dl_src (6), dl_dst (6), dl_vlan (2), dl_vlan_pcp (1), pad (1): zeros.
	binary.BigEndian.PutUint16(buf[22:24], m.DlType)
	// nw_tos (1)
	buf[25] = m.NwProto
	// pad (2)
	binary.BigEndian.PutUint32(buf[28:32], m.NwSrc)
	binary.BigEndian.PutUint32(buf[32:36], m.NwDst)
	binary.BigEndian.PutUint16(buf[36:38], m.TpSrc)
	binary.BigEndian.PutUint16(buf[38:40], m.TpDst)
}

func parseMatch(buf []byte) (Match, error) {
	if len(buf) < MatchLen {
		return Match{}, fmt.Errorf("openflow: short match (%d bytes)", len(buf))
	}
	return Match{
		Wildcards: binary.BigEndian.Uint32(buf[0:4]),
		InPort:    binary.BigEndian.Uint16(buf[4:6]),
		DlType:    binary.BigEndian.Uint16(buf[22:24]),
		NwProto:   buf[25],
		NwSrc:     binary.BigEndian.Uint32(buf[28:32]),
		NwDst:     binary.BigEndian.Uint32(buf[32:36]),
		TpSrc:     binary.BigEndian.Uint16(buf[36:38]),
		TpDst:     binary.BigEndian.Uint16(buf[38:40]),
	}, nil
}

// Hello is OFPT_HELLO.
type Hello struct{}

// Type implements Message.
func (Hello) Type() MsgType         { return TypeHello }
func (Hello) payload() []byte       { return nil }
func (*Hello) parse(_ []byte) error { return nil }

// EchoRequest is OFPT_ECHO_REQUEST with arbitrary payload.
type EchoRequest struct{ Data []byte }

// Type implements Message.
func (EchoRequest) Type() MsgType     { return TypeEchoRequest }
func (m EchoRequest) payload() []byte { return m.Data }
func (m *EchoRequest) parse(body []byte) error {
	m.Data = append([]byte(nil), body...)
	return nil
}

// EchoReply is OFPT_ECHO_REPLY echoing the request payload.
type EchoReply struct{ Data []byte }

// Type implements Message.
func (EchoReply) Type() MsgType     { return TypeEchoReply }
func (m EchoReply) payload() []byte { return m.Data }
func (m *EchoReply) parse(body []byte) error {
	m.Data = append([]byte(nil), body...)
	return nil
}

// FeaturesRequest is OFPT_FEATURES_REQUEST.
type FeaturesRequest struct{}

// Type implements Message.
func (FeaturesRequest) Type() MsgType         { return TypeFeaturesRequest }
func (FeaturesRequest) payload() []byte       { return nil }
func (*FeaturesRequest) parse(_ []byte) error { return nil }

// FeaturesReply is OFPT_FEATURES_REPLY (ports omitted).
type FeaturesReply struct {
	DatapathID   uint64
	NumBuffers   uint32
	NumTables    byte
	Capabilities uint32
	Actions      uint32
}

// Type implements Message.
func (FeaturesReply) Type() MsgType { return TypeFeaturesReply }

func (m FeaturesReply) payload() []byte {
	buf := make([]byte, 24)
	binary.BigEndian.PutUint64(buf[0:8], m.DatapathID)
	binary.BigEndian.PutUint32(buf[8:12], m.NumBuffers)
	buf[12] = m.NumTables
	binary.BigEndian.PutUint32(buf[16:20], m.Capabilities)
	binary.BigEndian.PutUint32(buf[20:24], m.Actions)
	return buf
}

func (m *FeaturesReply) parse(body []byte) error {
	if len(body) < 24 {
		return fmt.Errorf("openflow: short FEATURES_REPLY (%d bytes)", len(body))
	}
	m.DatapathID = binary.BigEndian.Uint64(body[0:8])
	m.NumBuffers = binary.BigEndian.Uint32(body[8:12])
	m.NumTables = body[12]
	m.Capabilities = binary.BigEndian.Uint32(body[16:20])
	m.Actions = binary.BigEndian.Uint32(body[20:24])
	return nil
}

// PacketIn reasons.
const (
	ReasonNoMatch byte = 0
	ReasonAction  byte = 1
)

// PacketIn is OFPT_PACKET_IN: a packet the switch forwards to the
// controller.
type PacketIn struct {
	BufferID uint32
	TotalLen uint16
	InPort   uint16
	Reason   byte
	Data     []byte
}

// Type implements Message.
func (PacketIn) Type() MsgType { return TypePacketIn }

func (m PacketIn) payload() []byte {
	buf := make([]byte, 10+len(m.Data))
	binary.BigEndian.PutUint32(buf[0:4], m.BufferID)
	binary.BigEndian.PutUint16(buf[4:6], m.TotalLen)
	binary.BigEndian.PutUint16(buf[6:8], m.InPort)
	buf[8] = m.Reason
	copy(buf[10:], m.Data)
	return buf
}

func (m *PacketIn) parse(body []byte) error {
	if len(body) < 10 {
		return fmt.Errorf("openflow: short PACKET_IN (%d bytes)", len(body))
	}
	m.BufferID = binary.BigEndian.Uint32(body[0:4])
	m.TotalLen = binary.BigEndian.Uint16(body[4:6])
	m.InPort = binary.BigEndian.Uint16(body[6:8])
	m.Reason = body[8]
	m.Data = append([]byte(nil), body[10:]...)
	return nil
}

// FlowMod commands.
const (
	FlowModAdd    uint16 = 0
	FlowModDelete uint16 = 3
)

// FlowMod is OFPT_FLOW_MOD: the controller installing (or deleting) a rule.
// The cookie carries the rule's index in the shared policy.
type FlowMod struct {
	Match       Match
	Cookie      uint64
	Command     uint16
	IdleTimeout uint16
	HardTimeout uint16
	Priority    uint16
	BufferID    uint32
	OutPort     uint16
	Flags       uint16
}

// Type implements Message.
func (FlowMod) Type() MsgType { return TypeFlowMod }

func (m FlowMod) payload() []byte {
	buf := make([]byte, MatchLen+24)
	m.Match.marshal(buf[0:MatchLen])
	o := MatchLen
	binary.BigEndian.PutUint64(buf[o:o+8], m.Cookie)
	binary.BigEndian.PutUint16(buf[o+8:o+10], m.Command)
	binary.BigEndian.PutUint16(buf[o+10:o+12], m.IdleTimeout)
	binary.BigEndian.PutUint16(buf[o+12:o+14], m.HardTimeout)
	binary.BigEndian.PutUint16(buf[o+14:o+16], m.Priority)
	binary.BigEndian.PutUint32(buf[o+16:o+20], m.BufferID)
	binary.BigEndian.PutUint16(buf[o+20:o+22], m.OutPort)
	binary.BigEndian.PutUint16(buf[o+22:o+24], m.Flags)
	return buf
}

func (m *FlowMod) parse(body []byte) error {
	if len(body) < MatchLen+24 {
		return fmt.Errorf("openflow: short FLOW_MOD (%d bytes)", len(body))
	}
	match, err := parseMatch(body[0:MatchLen])
	if err != nil {
		return err
	}
	m.Match = match
	o := MatchLen
	m.Cookie = binary.BigEndian.Uint64(body[o : o+8])
	m.Command = binary.BigEndian.Uint16(body[o+8 : o+10])
	m.IdleTimeout = binary.BigEndian.Uint16(body[o+10 : o+12])
	m.HardTimeout = binary.BigEndian.Uint16(body[o+12 : o+14])
	m.Priority = binary.BigEndian.Uint16(body[o+14 : o+16])
	m.BufferID = binary.BigEndian.Uint32(body[o+16 : o+20])
	m.OutPort = binary.BigEndian.Uint16(body[o+20 : o+22])
	m.Flags = binary.BigEndian.Uint16(body[o+22 : o+24])
	return nil
}

// PacketOut is OFPT_PACKET_OUT (actions omitted; the data rides behind the
// fixed fields as in OF 1.0 with actions_len = 0).
type PacketOut struct {
	BufferID uint32
	InPort   uint16
	Data     []byte
}

// Type implements Message.
func (PacketOut) Type() MsgType { return TypePacketOut }

func (m PacketOut) payload() []byte {
	buf := make([]byte, 8+len(m.Data))
	binary.BigEndian.PutUint32(buf[0:4], m.BufferID)
	binary.BigEndian.PutUint16(buf[4:6], m.InPort)
	// actions_len = 0
	copy(buf[8:], m.Data)
	return buf
}

func (m *PacketOut) parse(body []byte) error {
	if len(body) < 8 {
		return fmt.Errorf("openflow: short PACKET_OUT (%d bytes)", len(body))
	}
	m.BufferID = binary.BigEndian.Uint32(body[0:4])
	m.InPort = binary.BigEndian.Uint16(body[4:6])
	m.Data = append([]byte(nil), body[8:]...)
	return nil
}

// FlowRemoved reasons.
const (
	RemovedIdleTimeout byte = 0
	RemovedHardTimeout byte = 1
	RemovedDelete      byte = 2
)

// FlowRemoved is OFPT_FLOW_REMOVED: the switch reporting an expired or
// evicted rule.
type FlowRemoved struct {
	Match       Match
	Cookie      uint64
	Priority    uint16
	Reason      byte
	DurationSec uint32
	IdleTimeout uint16
	PacketCount uint64
	ByteCount   uint64
}

// Type implements Message.
func (FlowRemoved) Type() MsgType { return TypeFlowRemoved }

func (m FlowRemoved) payload() []byte {
	buf := make([]byte, MatchLen+40)
	m.Match.marshal(buf[0:MatchLen])
	o := MatchLen
	binary.BigEndian.PutUint64(buf[o:o+8], m.Cookie)
	binary.BigEndian.PutUint16(buf[o+8:o+10], m.Priority)
	buf[o+10] = m.Reason
	binary.BigEndian.PutUint32(buf[o+12:o+16], m.DurationSec)
	// duration_nsec
	binary.BigEndian.PutUint16(buf[o+20:o+22], m.IdleTimeout)
	binary.BigEndian.PutUint64(buf[o+24:o+32], m.PacketCount)
	binary.BigEndian.PutUint64(buf[o+32:o+40], m.ByteCount)
	return buf
}

func (m *FlowRemoved) parse(body []byte) error {
	if len(body) < MatchLen+40 {
		return fmt.Errorf("openflow: short FLOW_REMOVED (%d bytes)", len(body))
	}
	match, err := parseMatch(body[0:MatchLen])
	if err != nil {
		return err
	}
	m.Match = match
	o := MatchLen
	m.Cookie = binary.BigEndian.Uint64(body[o : o+8])
	m.Priority = binary.BigEndian.Uint16(body[o+8 : o+10])
	m.Reason = body[o+10]
	m.DurationSec = binary.BigEndian.Uint32(body[o+12 : o+16])
	m.IdleTimeout = binary.BigEndian.Uint16(body[o+20 : o+22])
	m.PacketCount = binary.BigEndian.Uint64(body[o+24 : o+32])
	m.ByteCount = binary.BigEndian.Uint64(body[o+32 : o+40])
	return nil
}

// ErrorMsg is OFPT_ERROR.
type ErrorMsg struct {
	ErrType uint16
	Code    uint16
	Data    []byte
}

// Type implements Message.
func (ErrorMsg) Type() MsgType { return TypeError }

func (m ErrorMsg) payload() []byte {
	buf := make([]byte, 4+len(m.Data))
	binary.BigEndian.PutUint16(buf[0:2], m.ErrType)
	binary.BigEndian.PutUint16(buf[2:4], m.Code)
	copy(buf[4:], m.Data)
	return buf
}

func (m *ErrorMsg) parse(body []byte) error {
	if len(body) < 4 {
		return fmt.Errorf("openflow: short ERROR (%d bytes)", len(body))
	}
	m.ErrType = binary.BigEndian.Uint16(body[0:2])
	m.Code = binary.BigEndian.Uint16(body[2:4])
	m.Data = append([]byte(nil), body[4:]...)
	return nil
}

// Encode renders a message with the given transaction id into its wire
// form.
func Encode(msg Message, xid uint32) ([]byte, error) {
	body := msg.payload()
	total := HeaderLen + len(body)
	if total > 0xFFFF {
		return nil, fmt.Errorf("openflow: message too large (%d bytes)", total)
	}
	buf := make([]byte, total)
	Header{Version: Version, Type: msg.Type(), Length: uint16(total), XID: xid}.marshal(buf)
	copy(buf[HeaderLen:], body)
	return buf, nil
}

// Decode parses a full wire message (header + body).
func Decode(buf []byte) (Message, Header, error) {
	h, err := parseHeader(buf)
	if err != nil {
		return nil, Header{}, err
	}
	if int(h.Length) > len(buf) {
		return nil, Header{}, fmt.Errorf("openflow: truncated message: header says %d, have %d", h.Length, len(buf))
	}
	body := buf[HeaderLen:h.Length]
	var msg Message
	switch h.Type {
	case TypeHello:
		msg = &Hello{}
	case TypeError:
		msg = &ErrorMsg{}
	case TypeEchoRequest:
		msg = &EchoRequest{}
	case TypeEchoReply:
		msg = &EchoReply{}
	case TypeFeaturesRequest:
		msg = &FeaturesRequest{}
	case TypeFeaturesReply:
		msg = &FeaturesReply{}
	case TypePacketIn:
		msg = &PacketIn{}
	case TypeFlowRemoved:
		msg = &FlowRemoved{}
	case TypePacketOut:
		msg = &PacketOut{}
	case TypeFlowMod:
		msg = &FlowMod{}
	default:
		return nil, h, fmt.Errorf("openflow: unsupported message type %s", h.Type)
	}
	if err := msg.parse(body); err != nil {
		return nil, h, err
	}
	return msg, h, nil
}
