package openflow

import (
	"strings"
	"testing"

	"flowrecon/internal/flows"
	"flowrecon/internal/rules"
	"flowrecon/internal/telemetry"
)

// TestInjectSpansCorrelateByBuffer: when both the switch and the
// controller record spans into one registry, a miss produces a
// switch-side inject → packet_in tree and a controller-side
// controller.decision → flow_mod tree whose buffer=N details match — the
// cross-wire correlation key, since the OpenFlow framing carries no trace
// IDs.
func TestInjectSpansCorrelateByBuffer(t *testing.T) {
	universe := flowsUniverse()
	rs := testRules(t)
	ctl := NewController(rs, universe, ControllerOptions{StepSeconds: 0.5})
	reg := telemetry.NewRegistry(0)
	reg.EnableSpans(0)
	ctl.SetTelemetry(reg)
	addr, err := ctl.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sw, err := NewSwitch(1, rs, universe, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sw.SetTelemetry(reg)
	if err := sw.Connect(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		sw.Close()
		ctl.Close()
	})

	tuple := universe.Tuple(0)
	res1, err := sw.Inject(tuple) // miss: full controller round trip
	if err != nil {
		t.Fatal(err)
	}
	res2, err := sw.Inject(tuple) // hit: local lookup only
	if err != nil {
		t.Fatal(err)
	}
	if res1.Hit || !res2.Hit {
		t.Fatalf("outcomes: %v %v", res1.Hit, res2.Hit)
	}

	spans := reg.Spans().Spans()
	find := func(name string) []telemetry.Span {
		var out []telemetry.Span
		for _, s := range spans {
			if s.Name == name {
				out = append(out, s)
			}
		}
		return out
	}
	injects := find("inject")
	if len(injects) != 2 {
		t.Fatalf("inject spans = %d, want 2", len(injects))
	}
	pins := find("packet_in")
	decs := find("controller.decision")
	fms := find("flow_mod")
	if len(pins) != 1 || len(decs) != 1 || len(fms) != 1 {
		t.Fatalf("miss chain spans: pins=%d decisions=%d flow_mods=%d", len(pins), len(decs), len(fms))
	}
	// Correlation: both sides carry the same buffer=N detail.
	bufDetail := ""
	for _, f := range strings.Fields(pins[0].Detail) {
		if strings.HasPrefix(f, "buffer=") {
			bufDetail = f
		}
	}
	if bufDetail == "" {
		t.Fatalf("switch packet_in span lacks a buffer key: %q", pins[0].Detail)
	}
	if !strings.Contains(decs[0].Detail, bufDetail) {
		t.Fatalf("controller decision %q does not echo %q", decs[0].Detail, bufDetail)
	}
	// Rule annotations point at the installed rule on both sides.
	if pins[0].Rule != res1.RuleID || fms[0].Rule != res1.RuleID {
		t.Fatalf("rule annotations: pin=%d fm=%d want %d", pins[0].Rule, fms[0].Rule, res1.RuleID)
	}
	// Flow identity survives on every span of the chain.
	for _, s := range [][]telemetry.Span{pins, decs, fms} {
		if s[0].Flow != 0 {
			t.Fatalf("span %s flow = %d", s[0].Name, s[0].Flow)
		}
	}
	// The switch-side tree nests packet_in under inject.
	forest := telemetry.BuildSpanForest(spans)
	var missRoot *telemetry.SpanNode
	for _, n := range forest {
		if n.Span.Name == "inject" && n.Span.ID == injects[0].ID {
			missRoot = n
		}
	}
	if missRoot == nil || len(missRoot.Children) != 1 || missRoot.Children[0].Span.Name != "packet_in" {
		t.Fatalf("switch span tree malformed: %+v", missRoot)
	}
	// Hit injects record no packet-in chain.
	hitInject := injects[1]
	if hitInject.Detail != "hit" || hitInject.Rule != res2.RuleID {
		t.Fatalf("hit inject span: %+v", hitInject)
	}
}

// flowsUniverse returns the paper's client-server universe used by the
// span correlation test. Kept separate from testFabric because the spans
// must be enabled on both sides BEFORE the switch connects.
func flowsUniverse() *flows.Universe {
	return flows.ClientServerUniverse(flows.MakeIPv4(10, 0, 1, 0), 4)
}

func testRules(t *testing.T) *rules.Set {
	t.Helper()
	rs, err := rules.NewSet([]rules.Rule{
		{Name: "r0", Cover: flows.SetOf(0, 1), Priority: 3, Timeout: 2},
		{Name: "r1", Cover: flows.SetOf(1, 2), Priority: 2, Timeout: 2},
		{Name: "r2", Cover: flows.SetOf(2), Priority: 1, Timeout: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return rs
}
