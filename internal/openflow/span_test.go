package openflow

import (
	"strings"
	"testing"

	"flowrecon/internal/flows"
	"flowrecon/internal/rules"
	"flowrecon/internal/telemetry"
)

// TestInjectSpansJoinAcrossWire: the PACKET_IN payload carries the
// switch's SpanContext as a side-band, so the controller's decision span
// adopts the switch's trace and parents under the packet_in span. With
// both sides recording into one registry, a miss yields ONE tree:
// inject → packet_in → controller.decision → flow_mod.
func TestInjectSpansJoinAcrossWire(t *testing.T) {
	universe := flowsUniverse()
	rs := testRules(t)
	ctl := NewController(rs, universe, ControllerOptions{StepSeconds: 0.5})
	reg := telemetry.NewRegistry(0)
	reg.EnableSpans(0)
	ctl.SetTelemetry(reg)
	addr, err := ctl.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sw, err := NewSwitch(1, rs, universe, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sw.SetTelemetry(reg)
	if err := sw.Connect(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		sw.Close()
		ctl.Close()
	})

	tuple := universe.Tuple(0)
	res1, err := sw.Inject(tuple) // miss: full controller round trip
	if err != nil {
		t.Fatal(err)
	}
	res2, err := sw.Inject(tuple) // hit: local lookup only
	if err != nil {
		t.Fatal(err)
	}
	if res1.Hit || !res2.Hit {
		t.Fatalf("outcomes: %v %v", res1.Hit, res2.Hit)
	}

	spans := reg.Spans().Spans()
	find := func(name string) []telemetry.Span {
		var out []telemetry.Span
		for _, s := range spans {
			if s.Name == name {
				out = append(out, s)
			}
		}
		return out
	}
	injects := find("inject")
	if len(injects) != 2 {
		t.Fatalf("inject spans = %d, want 2", len(injects))
	}
	pins := find("packet_in")
	decs := find("controller.decision")
	fms := find("flow_mod")
	if len(pins) != 1 || len(decs) != 1 || len(fms) != 1 {
		t.Fatalf("miss chain spans: pins=%d decisions=%d flow_mods=%d", len(pins), len(decs), len(fms))
	}
	// Cross-process propagation: the decision span adopted the switch's
	// trace and parents under the packet_in span — no post-hoc join.
	if decs[0].Trace != pins[0].Trace {
		t.Fatalf("decision trace %d != packet_in trace %d", decs[0].Trace, pins[0].Trace)
	}
	if decs[0].Parent != pins[0].ID {
		t.Fatalf("decision parent %d != packet_in span %d", decs[0].Parent, pins[0].ID)
	}
	// The buffer id is still carried as a human-readable cross-check.
	if !strings.Contains(decs[0].Detail, "buffer=") || !strings.Contains(pins[0].Detail, "buffer=") {
		t.Fatalf("buffer detail lost: pin=%q dec=%q", pins[0].Detail, decs[0].Detail)
	}
	// Rule annotations point at the installed rule on both sides.
	if pins[0].Rule != res1.RuleID || fms[0].Rule != res1.RuleID {
		t.Fatalf("rule annotations: pin=%d fm=%d want %d", pins[0].Rule, fms[0].Rule, res1.RuleID)
	}
	// Flow identity survives on every span of the chain.
	for _, s := range [][]telemetry.Span{pins, decs, fms} {
		if s[0].Flow != 0 {
			t.Fatalf("span %s flow = %d", s[0].Name, s[0].Flow)
		}
	}
	// One joined tree: inject → packet_in → controller.decision, with
	// flow_mod under the decision.
	forest := telemetry.BuildSpanForest(spans)
	var missRoot *telemetry.SpanNode
	for _, n := range forest {
		if n.Span.Name == "inject" && n.Span.ID == injects[0].ID {
			missRoot = n
		}
	}
	if missRoot == nil || len(missRoot.Children) != 1 || missRoot.Children[0].Span.Name != "packet_in" {
		t.Fatalf("switch span tree malformed: %+v", missRoot)
	}
	pinNode := missRoot.Children[0]
	if len(pinNode.Children) != 1 || pinNode.Children[0].Span.Name != "controller.decision" {
		t.Fatalf("controller decision not nested under packet_in: %+v", pinNode.Children)
	}
	decNode := pinNode.Children[0]
	if len(decNode.Children) != 1 || decNode.Children[0].Span.Name != "flow_mod" {
		t.Fatalf("flow_mod not nested under decision: %+v", decNode.Children)
	}
	// Hit injects record no packet-in chain.
	hitInject := injects[1]
	if hitInject.Detail != "hit" || hitInject.Rule != res2.RuleID {
		t.Fatalf("hit inject span: %+v", hitInject)
	}
}

// TestSpansJoinAcrossProcesses simulates the two-daemon deployment: the
// switch and controller record into SEPARATE namespaced recorders (as
// ofswitch/ofcontroller do), their JSONL streams are concatenated, and
// BuildSpanForest still yields one tree per miss because the wire-carried
// SpanContext references stay unambiguous across namespaces.
func TestSpansJoinAcrossProcesses(t *testing.T) {
	universe := flowsUniverse()
	rs := testRules(t)
	ctl := NewController(rs, universe, ControllerOptions{StepSeconds: 0.5})
	ctlReg := telemetry.NewRegistry(0)
	ctlReg.EnableSpans(0).SetNamespace(2)
	ctl.SetTelemetry(ctlReg)
	addr, err := ctl.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sw, err := NewSwitch(1, rs, universe, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	swReg := telemetry.NewRegistry(0)
	swReg.EnableSpans(0).SetNamespace(1)
	sw.SetTelemetry(swReg)
	if err := sw.Connect(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		sw.Close()
		ctl.Close()
	})

	if _, err := sw.Inject(universe.Tuple(0)); err != nil {
		t.Fatal(err)
	}

	// Concatenate the two processes' streams, as an operator would with
	// two /debug/spans downloads.
	merged := append(swReg.Spans().Spans(), ctlReg.Spans().Spans()...)
	forest := telemetry.BuildSpanForest(merged)
	var root *telemetry.SpanNode
	for _, n := range forest {
		if n.Span.Name == "inject" {
			root = n
		}
	}
	if root == nil {
		t.Fatal("no inject root in merged forest")
	}
	if len(root.Children) != 1 || root.Children[0].Span.Name != "packet_in" {
		t.Fatalf("inject children: %+v", root.Children)
	}
	pin := root.Children[0]
	if len(pin.Children) != 1 || pin.Children[0].Span.Name != "controller.decision" {
		t.Fatalf("decision not joined under packet_in: %+v", pin.Children)
	}
	dec := pin.Children[0]
	if dec.Span.Node != "controller" || pin.Span.Node != "switch" {
		t.Fatalf("node attribution: pin=%q dec=%q", pin.Span.Node, dec.Span.Node)
	}
	if dec.Span.Trace != pin.Span.Trace {
		t.Fatalf("trace mismatch across processes: %d vs %d", dec.Span.Trace, pin.Span.Trace)
	}
	// Distinct namespaces keep the two processes' span IDs disjoint.
	if pin.Span.ID>>40 == dec.Span.ID>>40 {
		t.Fatalf("span namespaces collide: pin=%d dec=%d", pin.Span.ID, dec.Span.ID)
	}
}

// flowsUniverse returns the paper's client-server universe used by the
// span correlation test. Kept separate from testFabric because the spans
// must be enabled on both sides BEFORE the switch connects.
func flowsUniverse() *flows.Universe {
	return flows.ClientServerUniverse(flows.MakeIPv4(10, 0, 1, 0), 4)
}

func testRules(t *testing.T) *rules.Set {
	t.Helper()
	rs, err := rules.NewSet([]rules.Rule{
		{Name: "r0", Cover: flows.SetOf(0, 1), Priority: 3, Timeout: 2},
		{Name: "r1", Cover: flows.SetOf(1, 2), Priority: 2, Timeout: 2},
		{Name: "r2", Cover: flows.SetOf(2), Priority: 1, Timeout: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return rs
}
