package openflow

import (
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// Conn frames OpenFlow messages over a byte stream and performs the
// version handshake. It is safe for one concurrent reader and multiple
// concurrent writers.
type Conn struct {
	rw      io.ReadWriteCloser
	writeMu sync.Mutex
	nextXID atomic.Uint32
}

// NewConn wraps an established transport (normally a *net.TCPConn).
func NewConn(rw io.ReadWriteCloser) *Conn {
	return &Conn{rw: rw}
}

// Dial connects to an OpenFlow endpoint over TCP.
func Dial(addr string) (*Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("openflow dial: %w", err)
	}
	return NewConn(c), nil
}

// Close closes the transport.
func (c *Conn) Close() error { return c.rw.Close() }

// XID mints a fresh transaction id.
func (c *Conn) XID() uint32 { return c.nextXID.Add(1) }

// Send writes one message with a fresh transaction id, returning the id.
func (c *Conn) Send(msg Message) (uint32, error) {
	xid := c.XID()
	return xid, c.SendXID(msg, xid)
}

// SendXID writes one message with the given transaction id.
func (c *Conn) SendXID(msg Message, xid uint32) error {
	buf, err := Encode(msg, xid)
	if err != nil {
		return err
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if _, err := c.rw.Write(buf); err != nil {
		return fmt.Errorf("openflow write: %w", err)
	}
	return nil
}

// Recv reads the next message.
func (c *Conn) Recv() (Message, Header, error) {
	head := make([]byte, HeaderLen)
	if _, err := io.ReadFull(c.rw, head); err != nil {
		return nil, Header{}, fmt.Errorf("openflow read header: %w", err)
	}
	h, err := parseHeader(head)
	if err != nil {
		return nil, Header{}, err
	}
	full := make([]byte, h.Length)
	copy(full, head)
	if _, err := io.ReadFull(c.rw, full[HeaderLen:]); err != nil {
		return nil, Header{}, fmt.Errorf("openflow read body: %w", err)
	}
	return Decode(full)
}

// Handshake exchanges HELLO messages (both sides send; both sides expect
// one). Either endpoint may call it first.
func (c *Conn) Handshake() error {
	if _, err := c.Send(&Hello{}); err != nil {
		return err
	}
	msg, _, err := c.Recv()
	if err != nil {
		return err
	}
	if msg.Type() != TypeHello {
		return fmt.Errorf("openflow handshake: expected HELLO, got %s", msg.Type())
	}
	return nil
}
