package openflow

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"flowrecon/internal/telemetry"
)

// DefaultHandshakeTimeout bounds the version handshake: a dead or silent
// peer must not hang a daemon forever (the read deadline is applied when
// the transport supports one, i.e. any net.Conn).
const DefaultHandshakeTimeout = 10 * time.Second

// DefaultDialTimeout bounds Dial's TCP connect. The historical Dial had
// no limit at all — a blackholed address would hang the caller forever —
// so Dial now applies this default; pass an explicit timeout to
// DialTimeout (or use DialContext) to override it.
const DefaultDialTimeout = 10 * time.Second

// Conn frames OpenFlow messages over a byte stream and performs the
// version handshake. It is safe for one concurrent reader and multiple
// concurrent writers.
type Conn struct {
	rw      io.ReadWriteCloser
	writeMu sync.Mutex
	nextXID atomic.Uint32
	tm      connMetrics // resolved telemetry instruments (zero = disabled)
}

// connMetrics hold per-message-type counters plus the handshake
// histogram. Indexing is by MsgType (all values < 16); unknown types fall
// through to nil (no-op) counters.
type connMetrics struct {
	txMsgs            [16]*telemetry.Counter
	rxMsgs            [16]*telemetry.Counter
	txBytes           [16]*telemetry.Counter
	rxBytes           [16]*telemetry.Counter
	handshakeSeconds  *telemetry.Histogram
	handshakeFailures *telemetry.Counter
}

// knownTypes enumerates the message types with dedicated counters.
var knownTypes = []MsgType{
	TypeHello, TypeError, TypeEchoRequest, TypeEchoReply,
	TypeFeaturesRequest, TypeFeaturesReply, TypePacketIn,
	TypeFlowRemoved, TypePacketOut, TypeFlowMod,
}

// SetTelemetry attaches the connection to a registry, resolving one
// counter series per message type and direction plus the handshake
// round-trip histogram. role ("switch"/"controller"), when non-empty,
// becomes a label on every series. Call before the connection is used
// concurrently. A nil registry disables telemetry.
func (c *Conn) SetTelemetry(reg *telemetry.Registry, role string) {
	var tm connMetrics
	for _, t := range knownTypes {
		labels := []string{"type", t.String()}
		if role != "" {
			labels = append(labels, "role", role)
		}
		tm.txMsgs[t] = reg.Counter("openflow_tx_messages_total", labels...)
		tm.rxMsgs[t] = reg.Counter("openflow_rx_messages_total", labels...)
		tm.txBytes[t] = reg.Counter("openflow_tx_bytes_total", labels...)
		tm.rxBytes[t] = reg.Counter("openflow_rx_bytes_total", labels...)
	}
	var roleLabels []string
	if role != "" {
		roleLabels = []string{"role", role}
	}
	tm.handshakeSeconds = reg.Histogram("openflow_handshake_seconds", nil, roleLabels...)
	tm.handshakeFailures = reg.Counter("openflow_handshake_failures_total", roleLabels...)
	c.tm = tm
}

// NewConn wraps an established transport (normally a *net.TCPConn).
func NewConn(rw io.ReadWriteCloser) *Conn {
	return &Conn{rw: rw}
}

// Dial connects to an OpenFlow endpoint over TCP, bounded by
// DefaultDialTimeout.
//
// Deprecated behavior note: Dial used to pass no timeout at all, which
// hung forever against a blackholed controller address. That footgun is
// gone — callers that genuinely want an unbounded connect must now say
// so explicitly with DialTimeout(addr, 0) or DialContext.
func Dial(addr string) (*Conn, error) {
	return DialTimeout(addr, DefaultDialTimeout)
}

// DialTimeout connects to an OpenFlow endpoint over TCP, failing after
// timeout (0 = no limit).
func DialTimeout(addr string, timeout time.Duration) (*Conn, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("openflow dial: %w", err)
	}
	return NewConn(c), nil
}

// DialContext connects to an OpenFlow endpoint over TCP under a context
// (cancellation and deadline both apply to the connect).
func DialContext(ctx context.Context, addr string) (*Conn, error) {
	var d net.Dialer
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("openflow dial: %w", err)
	}
	return NewConn(c), nil
}

// Close closes the transport.
func (c *Conn) Close() error { return c.rw.Close() }

// XID mints a fresh transaction id.
func (c *Conn) XID() uint32 { return c.nextXID.Add(1) }

// Send writes one message with a fresh transaction id, returning the id.
func (c *Conn) Send(msg Message) (uint32, error) {
	xid := c.XID()
	return xid, c.SendXID(msg, xid)
}

// SendXID writes one message with the given transaction id.
func (c *Conn) SendXID(msg Message, xid uint32) error {
	buf, err := Encode(msg, xid)
	if err != nil {
		return err
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if _, err := c.rw.Write(buf); err != nil {
		return fmt.Errorf("openflow write: %w", err)
	}
	if t := msg.Type(); int(t) < len(c.tm.txMsgs) {
		c.tm.txMsgs[t].Inc()
		c.tm.txBytes[t].Add(int64(len(buf)))
	}
	return nil
}

// RecvTimeout reads the next message, failing if nothing arrives within
// d (a peer that handshakes then goes silent must not hang the reader
// forever). The read deadline applies only when the transport supports
// one; it is cleared before returning. d ≤ 0 means no deadline.
func (c *Conn) RecvTimeout(d time.Duration) (Message, Header, error) {
	if d > 0 {
		if dt, ok := c.rw.(deadlineTransport); ok {
			if err := dt.SetReadDeadline(time.Now().Add(d)); err == nil {
				defer dt.SetReadDeadline(time.Time{})
			}
		}
	}
	return c.Recv()
}

// Recv reads the next message.
func (c *Conn) Recv() (Message, Header, error) {
	head := make([]byte, HeaderLen)
	if _, err := io.ReadFull(c.rw, head); err != nil {
		return nil, Header{}, fmt.Errorf("openflow read header: %w", err)
	}
	h, err := parseHeader(head)
	if err != nil {
		return nil, Header{}, err
	}
	full := make([]byte, h.Length)
	copy(full, head)
	if _, err := io.ReadFull(c.rw, full[HeaderLen:]); err != nil {
		return nil, Header{}, fmt.Errorf("openflow read body: %w", err)
	}
	if int(h.Type) < len(c.tm.rxMsgs) {
		c.tm.rxMsgs[h.Type].Inc()
		c.tm.rxBytes[h.Type].Add(int64(h.Length))
	}
	return Decode(full)
}

// deadlineTransport is the optional deadline surface of the underlying
// transport (any net.Conn, including net.Pipe, implements it).
type deadlineTransport interface {
	SetReadDeadline(time.Time) error
}

// Handshake exchanges HELLO messages (both sides send; both sides expect
// one) with the default handshake timeout. Either endpoint may call it
// first.
func (c *Conn) Handshake() error {
	return c.HandshakeTimeout(DefaultHandshakeTimeout)
}

// HandshakeTimeout is Handshake with an explicit bound on the peer's
// HELLO (0 = wait forever). The read deadline applies only when the
// transport supports one; it is cleared before returning. Failures are
// counted in the openflow_handshake_failures_total series.
func (c *Conn) HandshakeTimeout(timeout time.Duration) error {
	begin := time.Now()
	err := c.handshake(timeout)
	if err != nil {
		c.tm.handshakeFailures.Inc()
		return err
	}
	c.tm.handshakeSeconds.Observe(time.Since(begin).Seconds())
	return nil
}

func (c *Conn) handshake(timeout time.Duration) error {
	if _, err := c.Send(&Hello{}); err != nil {
		return err
	}
	if timeout > 0 {
		if dt, ok := c.rw.(deadlineTransport); ok {
			if err := dt.SetReadDeadline(time.Now().Add(timeout)); err == nil {
				defer dt.SetReadDeadline(time.Time{})
			}
		}
	}
	msg, _, err := c.Recv()
	if err != nil {
		return fmt.Errorf("openflow handshake: %w", err)
	}
	if msg.Type() != TypeHello {
		return fmt.Errorf("openflow handshake: expected HELLO, got %s", msg.Type())
	}
	return nil
}
