package core

import (
	"sort"

	"flowrecon/internal/flows"
	"flowrecon/internal/markov"
	"flowrecon/internal/stats"
)

// Belief observability: the paper's attacker is an inference engine —
// it chooses probes by expected information gain over a Markov model
// (§V) — and this file makes its inference state inspectable. A
// BeliefTracker follows the attacker's posterior over X̂ ("the target
// flow occurred within the window") probe by probe, emitting one
// BeliefStep per observation with the realized information gain, the
// entropy still unresolved, and a snapshot of the conditioned
// switch-state distribution.

// StateProb is one entry of a Markov state-distribution snapshot.
type StateProb struct {
	// State is the model's state index (a cached-rule subset in the
	// compact model).
	State int `json:"state"`
	// P is the state's posterior probability.
	P float64 `json:"p"`
}

// BeliefStep is the structured record of one probe observation: what the
// attacker believed before, what it saw, and what it believes after.
type BeliefStep struct {
	// Index is the probe's position within the trial (0-based).
	Index int `json:"index"`
	// Probe is the flow probed.
	Probe flows.ID `json:"probe"`
	// Hit is the classified outcome Q_f the attacker observed.
	Hit bool `json:"hit"`
	// Lost marks a probe that produced no observation at all (dropped by
	// the network or timed out): Hit is meaningless, the posterior is
	// unchanged, and GainBits is zero. Absent from records of fault-free
	// runs.
	Lost bool `json:"lost,omitempty"`
	// Prior is P(X̂ = 1 | outcomes before this probe).
	Prior float64 `json:"prior"`
	// Posterior is P(X̂ = 1 | outcomes including this probe).
	Posterior float64 `json:"posterior"`
	// GainBits is the realized information gain of this observation in
	// bits: H(prior) − H(posterior). Unlike the expected gain that drove
	// probe selection it can be negative — a surprising outcome can
	// leave the attacker less certain than before.
	GainBits float64 `json:"gainBits"`
	// EntropyBits is the entropy remaining about X̂ after this probe,
	// H(posterior).
	EntropyBits float64 `json:"entropyBits"`
	// PathProb is P(observing this outcome prefix) under the attacker's
	// model — small values flag trials the model considered unlikely.
	PathProb float64 `json:"pathProb"`
	// TopStates is the (normalized) outcome-conditioned switch-state
	// distribution, truncated to the most probable states.
	TopStates []StateProb `json:"topStates,omitempty"`
}

// BeliefTrackerTopK is the number of states retained in each
// BeliefStep's state-distribution snapshot.
const BeliefTrackerTopK = 8

// BeliefTracker follows a selector's posterior over X̂ through a
// sequence of observed probe outcomes. It mirrors the conditioning that
// EvaluateSequence and BuildAdaptiveTree apply during planning — split
// the state distribution on the observed outcome, apply the probe's
// cache side effect — but over the outcomes actually seen at run time.
type BeliefTracker struct {
	sel   *ProbeSelector
	d     markov.Dist // unconditional dist, mass = P(outcome prefix)
	d0    markov.Dist // target-absent dist, mass = P(prefix | X̂=0)
	post  float64     // current P(X̂=1 | prefix)
	steps []BeliefStep
}

// NewBeliefTracker starts a tracker at the selector's prior (no probes
// observed yet).
func (s *ProbeSelector) NewBeliefTracker() *BeliefTracker {
	return &BeliefTracker{
		sel:  s,
		d:    s.dist.Clone(),
		d0:   s.dist0.Clone(),
		post: 1 - s.pAbsent,
	}
}

// Prior returns the tracker's current belief P(X̂ = 1 | outcomes so
// far) — the prior of the next probe.
func (t *BeliefTracker) Prior() float64 { return t.post }

// EntropyBits returns the entropy remaining about X̂ in bits.
func (t *BeliefTracker) EntropyBits() float64 { return stats.BinaryEntropy(t.post) }

// Observe folds one classified probe outcome into the belief state and
// returns the resulting BeliefStep (also retained in Steps).
func (t *BeliefTracker) Observe(f flows.ID, hit bool) BeliefStep {
	prior := t.post
	hitD, missD := t.sel.model.SplitByHit(t.d, f)
	hitD0, missD0 := t.sel.model0.SplitByHit(t.d0, f)
	bd, bd0 := missD, missD0
	if hit {
		bd, bd0 = hitD, hitD0
	}
	pq := bd.Sum()                   // P(prefix ∧ this outcome)
	pq0 := t.sel.pAbsent * bd0.Sum() // P(X̂=0 ∧ prefix ∧ outcome)
	posterior := 1 - t.sel.pAbsent   // prior fallback for impossible paths
	if pq > 0 {
		posterior = clamp01(pq-pq0) / pq
	}
	t.d = t.sel.model.ApplyProbe(bd, f, hit)
	t.d0 = t.sel.model0.ApplyProbe(bd0, f, hit)
	t.post = posterior

	step := BeliefStep{
		Index:       len(t.steps),
		Probe:       f,
		Hit:         hit,
		Prior:       prior,
		Posterior:   posterior,
		GainBits:    stats.BinaryEntropy(prior) - stats.BinaryEntropy(posterior),
		EntropyBits: stats.BinaryEntropy(posterior),
		PathProb:    pq,
		TopStates:   TopStates(t.d, BeliefTrackerTopK),
	}
	t.steps = append(t.steps, step)
	return step
}

// ObserveLost folds a lost probe into the belief state: the probe was
// sent but no reply ever came back, so the attacker learned nothing.
// The posterior is unchanged, the realized gain is zero, and — because
// a dropped probe never reaches the switch's flow table — no cache side
// effect is applied to the conditioned state distributions. The step is
// still recorded (with Lost set) so recordings show where the trial's
// observations have holes.
func (t *BeliefTracker) ObserveLost(f flows.ID) BeliefStep {
	step := BeliefStep{
		Index:       len(t.steps),
		Probe:       f,
		Lost:        true,
		Prior:       t.post,
		Posterior:   t.post,
		GainBits:    0,
		EntropyBits: stats.BinaryEntropy(t.post),
		PathProb:    t.d.Sum(),
		TopStates:   TopStates(t.d, BeliefTrackerTopK),
	}
	t.steps = append(t.steps, step)
	return step
}

// Steps returns the belief steps observed so far.
func (t *BeliefTracker) Steps() []BeliefStep {
	return append([]BeliefStep(nil), t.steps...)
}

// TopStates returns the k most probable states of d, normalized to the
// distribution's mass (nil for zero-mass or empty distributions). Ties
// break toward the lower state index so snapshots are deterministic.
func TopStates(d markov.Dist, k int) []StateProb {
	total := d.Sum()
	if total <= 0 || k <= 0 {
		return nil
	}
	idx := make([]int, 0, len(d))
	for i, p := range d {
		if p > 0 {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		if d[idx[a]] != d[idx[b]] {
			return d[idx[a]] > d[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if len(idx) > k {
		idx = idx[:k]
	}
	out := make([]StateProb, len(idx))
	for i, s := range idx {
		out[i] = StateProb{State: s, P: d[s] / total}
	}
	return out
}

// BeliefProvider is implemented by attackers whose verdicts come from a
// fitted model; the trial runner uses it to attach a BeliefTracker and
// record per-probe belief steps.
type BeliefProvider interface {
	// Selector exposes the probe selector (the fitted model chains) the
	// attacker plans and decides with.
	Selector() *ProbeSelector
}
