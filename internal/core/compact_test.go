package core

import (
	"math"
	"testing"

	"flowrecon/internal/flows"
	"flowrecon/internal/flowtable"
	"flowrecon/internal/rules"
	"flowrecon/internal/stats"
	"flowrecon/internal/workload"
)

func TestCompactStateCount(t *testing.T) {
	cases := []struct {
		rules, cap, want int
	}{
		{12, 6, 2510},     // the paper's evaluation setting (+ empty state)
		{3, 2, 1 + 3 + 3}, // ∅, singletons, pairs
		{4, 10, 16},       // capacity above |Rules| → all subsets
		{1, 1, 2},         // ∅ and {rule}
	}
	for _, c := range cases {
		if got := CompactStateCount(c.rules, c.cap); got != c.want {
			t.Errorf("CompactStateCount(%d,%d) = %d, want %d", c.rules, c.cap, got, c.want)
		}
	}
}

func TestCompactModelBuild(t *testing.T) {
	cfg := tinyConfig(t)
	m, err := NewCompactModel(cfg, DefaultUSumParams())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := m.NumStates(), CompactStateCount(3, 2); got != want {
		t.Fatalf("states = %d, want %d", got, want)
	}
	if err := m.Matrix().CheckStochastic(1e-9); err != nil {
		t.Fatal(err)
	}
	if m.ExactStateFraction() != 1 {
		t.Fatalf("tiny config should enumerate exactly, got fraction %v", m.ExactStateFraction())
	}
}

func TestCompactModelRejectsBadConfig(t *testing.T) {
	cfg := tinyConfig(t)
	cfg.CacheSize = 0
	if _, err := NewCompactModel(cfg, DefaultUSumParams()); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestUSumSingleRuleAnalytic(t *testing.T) {
	// One rule covering one flow: P(u) = g·e^{-g·u}. Timeout probability
	// must equal e^{-g·t} / Σ_{u=1..t} e^{-g·u}; eviction is trivially 1.
	rs, err := rules.NewSet([]rules.Rule{{Cover: flows.SetOf(0), Priority: 1, Timeout: 5}})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Rules: rs, Rates: []float64{0.7}, Delta: 0.3, CacheSize: 1}
	e := &uEstimator{rs: rs, sr: cfg.stepRates(), capacity: 1, params: DefaultUSumParams()}
	est := e.estimate([]int{0})
	if !est.Feasible || !est.Exact {
		t.Fatalf("estimates = %+v", est)
	}
	if math.Abs(est.Evict[0]-1) > 1e-12 {
		t.Fatalf("evict = %v", est.Evict[0])
	}
	g := 0.7 * 0.3
	num := math.Exp(-g * 5)
	den := 0.0
	for u := 1; u <= 5; u++ {
		den += math.Exp(-g * float64(u))
	}
	if want := num / den; math.Abs(est.Timeout[0]-want) > 1e-9 {
		t.Fatalf("timeout = %v, want %v", est.Timeout[0], want)
	}
}

func TestUSumEvictionFavorsShorterTimeout(t *testing.T) {
	// Two cached rules over disjoint flows with equal rates: the rule
	// with the shorter timeout should be the likelier eviction victim.
	rs, err := rules.NewSet([]rules.Rule{
		{Cover: flows.SetOf(0), Priority: 2, Timeout: 2},
		{Cover: flows.SetOf(1), Priority: 1, Timeout: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Rules: rs, Rates: []float64{0.5, 0.5}, Delta: 0.2, CacheSize: 2}
	e := &uEstimator{rs: rs, sr: cfg.stepRates(), capacity: 2, params: DefaultUSumParams()}
	est := e.estimate([]int{0, 1})
	if est.Evict[0] <= est.Evict[1] {
		t.Fatalf("evict = %v; short-timeout rule should be likelier victim", est.Evict)
	}
	if s := est.Evict[0] + est.Evict[1]; math.Abs(s-1) > 1e-9 {
		t.Fatalf("eviction distribution sums to %v", s)
	}
}

func TestUSumInfeasibleFallback(t *testing.T) {
	// Two cached rules both with timeout 1: injective u is impossible.
	rs, err := rules.NewSet([]rules.Rule{
		{Cover: flows.SetOf(0), Priority: 2, Timeout: 1},
		{Cover: flows.SetOf(1), Priority: 1, Timeout: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Rules: rs, Rates: []float64{0.5, 0.5}, Delta: 0.2, CacheSize: 2}
	e := &uEstimator{rs: rs, sr: cfg.stepRates(), capacity: 2, params: DefaultUSumParams()}
	est := e.estimate([]int{0, 1})
	if est.Feasible {
		t.Fatal("infeasible assignment reported feasible")
	}
	if est.Evict[0] != 0.5 || est.Evict[1] != 0.5 {
		t.Fatalf("fallback eviction = %v", est.Evict)
	}
	if est.Timeout[0] != 0 || est.Timeout[1] != 0 {
		t.Fatalf("fallback timeout = %v", est.Timeout)
	}
}

func TestUSumEmptyState(t *testing.T) {
	cfg := tinyConfig(t)
	e := &uEstimator{rs: cfg.Rules, sr: cfg.stepRates(), capacity: 2, params: DefaultUSumParams()}
	est := e.estimate(nil)
	if !est.Feasible || len(est.Evict) != 0 {
		t.Fatalf("empty-state estimate = %+v", est)
	}
}

func TestUSumMonteCarloMatchesExact(t *testing.T) {
	// Force MC by setting ExactLimit to 0 and compare with the exact sum.
	rs, err := rules.NewSet([]rules.Rule{
		{Cover: flows.SetOf(0, 1), Priority: 3, Timeout: 6},
		{Cover: flows.SetOf(1, 2), Priority: 2, Timeout: 4},
		{Cover: flows.SetOf(3), Priority: 1, Timeout: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Rules: rs, Rates: []float64{0.6, 0.4, 0.8, 0.3}, Delta: 0.2, CacheSize: 3}
	exactE := &uEstimator{rs: rs, sr: cfg.stepRates(), capacity: 3, params: USumParams{ExactLimit: 1 << 20, MCSamples: 1, Seed: 1}}
	mcE := &uEstimator{rs: rs, sr: cfg.stepRates(), capacity: 3, params: USumParams{ExactLimit: 0, MCSamples: 60000, Seed: 1}}
	cachedSets := [][]int{{0, 1}, {0, 1, 2}, {1, 2}, {0}}
	for _, cs := range cachedSets {
		exact := exactE.estimate(cs)
		mc := mcE.estimate(cs)
		if !exact.Exact || mc.Exact {
			t.Fatalf("estimator mode mix-up: exact=%v mc=%v", exact.Exact, mc.Exact)
		}
		for _, j := range cs {
			if math.Abs(exact.Evict[j]-mc.Evict[j]) > 0.02 {
				t.Errorf("cached %v rule %d: evict exact %.4f vs mc %.4f", cs, j, exact.Evict[j], mc.Evict[j])
			}
			if math.Abs(exact.Timeout[j]-mc.Timeout[j]) > 0.02 {
				t.Errorf("cached %v rule %d: timeout exact %.4f vs mc %.4f", cs, j, exact.Timeout[j], mc.Timeout[j])
			}
		}
	}
}

func TestInjectiveFeasible(t *testing.T) {
	cases := []struct {
		touts []int
		want  bool
	}{
		{[]int{1}, true},
		{[]int{1, 1}, false},
		{[]int{1, 2}, true},
		{[]int{2, 2, 2}, false},
		{[]int{3, 1, 2}, true},
		{nil, true},
	}
	for _, c := range cases {
		if got := injectiveFeasible(c.touts); got != c.want {
			t.Errorf("injectiveFeasible(%v) = %v", c.touts, got)
		}
	}
}

func TestSampleInjective(t *testing.T) {
	rng := &splitmix{s: 1}
	u := make([]int, 3)
	for i := 0; i < 200; i++ {
		if !sampleInjective(rng, []int{4, 4, 4}, u) {
			t.Fatal("sampling failed on feasible grid")
		}
		if u[0] == u[1] || u[0] == u[2] || u[1] == u[2] {
			t.Fatalf("non-injective sample %v", u)
		}
		for k, v := range u {
			if v < 1 || v > 4 {
				t.Fatalf("u[%d] = %d out of range", k, v)
			}
		}
	}
}

// TestCompactAgreesWithBasic compares the two models' hit probabilities on
// the tiny configuration. The compact model is approximate, so the
// tolerance is loose — but both must broadly agree about which flows are
// likely covered.
func TestCompactAgreesWithBasic(t *testing.T) {
	cfg := tinyConfig(t)
	basic, err := NewBasicModel(cfg, 400000)
	if err != nil {
		t.Fatal(err)
	}
	compact, err := NewCompactModel(cfg, DefaultUSumParams())
	if err != nil {
		t.Fatal(err)
	}
	const steps = 30
	db := basic.Evolve(basic.InitialDist(), steps)
	dc := compact.Evolve(compact.InitialDist(), steps)
	for f := 0; f < len(cfg.Rates); f++ {
		pb := basic.HitProbability(db, flows.ID(f))
		pc := compact.HitProbability(dc, flows.ID(f))
		if math.Abs(pb-pc) > 0.12 {
			t.Errorf("flow %d: basic %.3f vs compact %.3f", f, pb, pc)
		}
	}
	for j := 0; j < cfg.Rules.Len(); j++ {
		pb := basic.CachedProbability(db, j)
		pc := compact.CachedProbability(dc, j)
		if math.Abs(pb-pc) > 0.12 {
			t.Errorf("rule %d: basic %.3f vs compact %.3f", j, pb, pc)
		}
	}
}

// TestCompactAgainstContinuousSimulation validates the compact model
// end-to-end against the continuous-time reference switch fed by Poisson
// traffic — the analogue of the paper's Mininet ground truth.
func TestCompactAgainstContinuousSimulation(t *testing.T) {
	rs, err := rules.NewSet([]rules.Rule{
		{Cover: flows.SetOf(0, 1), Priority: 5, Timeout: 6},
		{Cover: flows.SetOf(1, 2), Priority: 4, Timeout: 10},
		{Cover: flows.SetOf(2, 3), Priority: 3, Timeout: 4},
		{Cover: flows.SetOf(0, 3), Priority: 2, Timeout: 8},
		{Cover: flows.SetOf(4), Priority: 1, Timeout: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Rules:     rs,
		Rates:     []float64{0.5, 0.9, 0.3, 0.7, 0.4},
		Delta:     0.1,
		CacheSize: 3,
	}
	m, err := NewCompactModel(cfg, DefaultUSumParams())
	if err != nil {
		t.Fatal(err)
	}
	const (
		steps  = 100
		trials = 4000
	)
	dT := m.Evolve(m.InitialDist(), steps)

	horizon := float64(steps) * cfg.Delta
	rng := stats.NewRNG(7)
	hits := make([]int, len(cfg.Rates))
	for trial := 0; trial < trials; trial++ {
		tr, err := workload.GeneratePoisson(workload.PoissonConfig{Rates: cfg.Rates, Duration: horizon}, rng.Fork())
		if err != nil {
			t.Fatal(err)
		}
		tbl, err := flowtable.New(rs, cfg.CacheSize, cfg.Delta)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range tr.Arrivals() {
			if _, ok := tbl.Lookup(a.Flow, a.Time); !ok {
				if j, covered := rs.HighestCovering(a.Flow); covered {
					tbl.Install(j, a.Time)
				}
			}
		}
		for f := range cfg.Rates {
			if _, ok := rs.MatchIn(flows.ID(f), func(j int) bool { return tbl.Contains(j, horizon) }); ok {
				hits[f]++
			}
		}
	}
	for f := range cfg.Rates {
		want := float64(hits[f]) / trials
		got := m.HitProbability(dT, flows.ID(f))
		if math.Abs(got-want) > 0.12 {
			t.Errorf("flow %d: compact %.3f vs simulated %.3f", f, got, want)
		}
	}
}

func TestCompactApplyProbe(t *testing.T) {
	cfg := tinyConfig(t)
	m, err := NewCompactModel(cfg, DefaultUSumParams())
	if err != nil {
		t.Fatal(err)
	}
	d := m.Evolve(m.InitialDist(), 25)
	hit, miss := m.SplitByHit(d, 1)
	if math.Abs(hit.Sum()+miss.Sum()-1) > 1e-9 {
		t.Fatalf("partition mass = %v", hit.Sum()+miss.Sum())
	}
	after := m.ApplyProbe(miss, 1, false)
	if math.Abs(after.Sum()-miss.Sum()) > 1e-9 {
		t.Fatal("install lost mass")
	}
	// Flow 1's only cover is rule1 (index 1): after the install, every
	// state in the miss mass must cache it.
	if p := m.CachedProbability(after, 1); math.Abs(p-miss.Sum()) > 1e-9 {
		t.Fatalf("rule1 cached mass = %v, want %v", p, miss.Sum())
	}
	// A hit probe is a no-op on subset states.
	afterHit := m.ApplyProbe(hit, 1, true)
	for i := range hit {
		if afterHit[i] != hit[i] {
			t.Fatal("hit probe changed the distribution")
		}
	}
	// Probing an uncovered flow changes nothing.
	cfgWide := cfg
	cfgWide.Rates = []float64{0.8, 0.5, 0.9, 0.1}
	m2, err := NewCompactModel(cfgWide, DefaultUSumParams())
	if err != nil {
		t.Fatal(err)
	}
	d2 := m2.Evolve(m2.InitialDist(), 10)
	after2 := m2.ApplyProbe(d2, 3, false)
	for i := range d2 {
		if after2[i] != d2[i] {
			t.Fatal("uncovered probe changed the distribution")
		}
	}
}

func TestCompactApplyProbeEvictsWhenFull(t *testing.T) {
	cfg := tinyConfig(t) // capacity 2, 3 rules
	m, err := NewCompactModel(cfg, DefaultUSumParams())
	if err != nil {
		t.Fatal(err)
	}
	// Build a point distribution on the full state {rule0, rule1}.
	var full int = -1
	for i := 0; i < m.NumStates(); i++ {
		if m.StateMask(i) == 0b011 {
			full = i
		}
	}
	if full < 0 {
		t.Fatal("full state not found")
	}
	d := make([]float64, m.NumStates())
	d[full] = 1
	after := m.ApplyProbe(d, 2, false) // install rule2, must evict rule0 or rule1
	if math.Abs(sum(after)-1) > 1e-9 {
		t.Fatalf("mass = %v", sum(after))
	}
	if p := m.CachedProbability(after, 2); math.Abs(p-1) > 1e-9 {
		t.Fatalf("rule2 cached = %v", p)
	}
	// No state may hold all three rules (capacity 2).
	for i, p := range after {
		if p > 0 && m.StateMask(i) == 0b111 {
			t.Fatal("over-capacity state has mass")
		}
	}
}

func TestCompactSteadyState(t *testing.T) {
	cfg := tinyConfig(t)
	m, err := NewCompactModel(cfg, DefaultUSumParams())
	if err != nil {
		t.Fatal(err)
	}
	d, steps := m.SteadyState(1e-10, 10000)
	if steps >= 10000 {
		t.Fatal("steady state did not converge")
	}
	next := m.Matrix().Apply(d)
	for i := range d {
		if math.Abs(next[i]-d[i]) > 1e-8 {
			t.Fatalf("not stationary at state %d: %v vs %v", i, d[i], next[i])
		}
	}
}

func TestMaskIDs(t *testing.T) {
	ids := maskIDs(0b1011)
	want := []int{0, 1, 3}
	if len(ids) != 3 {
		t.Fatalf("ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
	if len(maskIDs(0)) != 0 {
		t.Fatal("empty mask")
	}
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

func TestSumGammaRangeMatchesNaive(t *testing.T) {
	cfg := tinyConfig(t)
	e := &uEstimator{rs: cfg.Rules, sr: cfg.stepRates(), capacity: 2, params: DefaultUSumParams()}
	tab := e.buildGammaTables([]int{0, 1})
	rng := stats.NewRNG(11)
	for trial := 0; trial < 500; trial++ {
		u := []int{1 + rng.Intn(6), 1 + rng.Intn(6)}
		for j := 0; j < cfg.Rules.Len(); j++ {
			for kmax := 0; kmax <= 8; kmax++ {
				naive := 0.0
				for k := 1; k <= kmax; k++ {
					naive += tab.gammaAt(j, k, u)
				}
				if got := tab.sumGammaRange(j, kmax, u); math.Abs(got-naive) > 1e-12 {
					t.Fatalf("u=%v j=%d kmax=%d: segment %v vs naive %v", u, j, kmax, got, naive)
				}
			}
		}
	}
}

// TestFigure4EvictionFanOut reproduces the paper's Figure 4: from a full
// state {rule1, rule2, rule3}, the arrival of a flow that installs rule4
// must fan out to exactly the three states exchanging one resident rule
// for rule4.
func TestFigure4EvictionFanOut(t *testing.T) {
	rs, err := rules.NewSet([]rules.Rule{
		{Name: "rule1", Cover: flows.SetOf(0), Priority: 4, Timeout: 4},
		{Name: "rule2", Cover: flows.SetOf(1), Priority: 3, Timeout: 5},
		{Name: "rule3", Cover: flows.SetOf(2), Priority: 2, Timeout: 6},
		{Name: "rule4", Cover: flows.SetOf(3), Priority: 1, Timeout: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Rules: rs, Rates: []float64{0.4, 0.5, 0.6, 0.7}, Delta: 0.1, CacheSize: 3}
	m, err := NewCompactModel(cfg, DefaultUSumParams())
	if err != nil {
		t.Fatal(err)
	}
	var from int = -1
	for i := 0; i < m.NumStates(); i++ {
		if m.StateMask(i) == 0b0111 { // {rule1, rule2, rule3}
			from = i
		}
	}
	if from < 0 {
		t.Fatal("full state not enumerated")
	}
	tos, ps := m.Matrix().Row(from)
	wantTargets := map[uint64]bool{
		0b1110: true, // rule1 evicted
		0b1101: true, // rule2 evicted
		0b1011: true, // rule3 evicted
	}
	found := map[uint64]float64{}
	for i, to := range tos {
		mask := m.StateMask(to)
		if wantTargets[mask] {
			found[mask] = ps[i]
		}
	}
	if len(found) != 3 {
		t.Fatalf("eviction fan-out = %v, want the three Figure 4 targets", found)
	}
	for mask, p := range found {
		if p <= 0 {
			t.Fatalf("target %04b has zero probability", mask)
		}
	}
}

// TestFigure5ExpirationFanOut reproduces the paper's Figure 5: from state
// {rule1, rule2}, the null event must offer both single-rule expiration
// transitions.
func TestFigure5ExpirationFanOut(t *testing.T) {
	rs, err := rules.NewSet([]rules.Rule{
		{Name: "rule1", Cover: flows.SetOf(0), Priority: 2, Timeout: 4},
		{Name: "rule2", Cover: flows.SetOf(1), Priority: 1, Timeout: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Rules: rs, Rates: []float64{0.4, 0.5}, Delta: 0.1, CacheSize: 2}
	m, err := NewCompactModel(cfg, DefaultUSumParams())
	if err != nil {
		t.Fatal(err)
	}
	var from int = -1
	for i := 0; i < m.NumStates(); i++ {
		if m.StateMask(i) == 0b11 {
			from = i
		}
	}
	tos, ps := m.Matrix().Row(from)
	got := map[uint64]float64{}
	for i, to := range tos {
		got[m.StateMask(to)] = ps[i]
	}
	if got[0b10] <= 0 || got[0b01] <= 0 {
		t.Fatalf("expiration fan-out = %v, want both {rule1} and {rule2} reachable", got)
	}
	// The shorter-TTL rule (rule1, t=4) should be the likelier expiration.
	if got[0b10] <= got[0b01] {
		t.Fatalf("short-TTL rule should expire first: P(lose rule1)=%v vs P(lose rule2)=%v",
			got[0b10], got[0b01])
	}
}
