package core

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"flowrecon/internal/stats"
)

// TestObserveLostIsNoObservation: a lost probe leaves the belief state
// untouched — same posterior, zero gain, no cache side effect — while
// still being recorded as a step.
func TestObserveLostIsNoObservation(t *testing.T) {
	cfg := fig2cConfig(t)
	sel := newSelector(t, cfg, 0, 40)

	withLoss := sel.NewBeliefTracker()
	clean := sel.NewBeliefTracker()

	step := withLoss.ObserveLost(1)
	if !step.Lost {
		t.Fatal("lost step not marked Lost")
	}
	if step.Prior != step.Posterior {
		t.Fatalf("lost probe moved the posterior: %v -> %v", step.Prior, step.Posterior)
	}
	if step.GainBits != 0 {
		t.Fatalf("lost probe realized gain %v, want 0", step.GainBits)
	}
	if withLoss.Prior() != clean.Prior() {
		t.Fatalf("tracker posterior changed: %v vs %v", withLoss.Prior(), clean.Prior())
	}

	// A real observation after the loss must match a tracker that never
	// saw the lost probe: dropped probes apply no cache side effect.
	sLoss := withLoss.Observe(2, true)
	sClean := clean.Observe(2, true)
	if math.Abs(sLoss.Posterior-sClean.Posterior) > 1e-12 {
		t.Fatalf("lost probe perturbed later inference: %v vs %v", sLoss.Posterior, sClean.Posterior)
	}
	if math.Abs(sLoss.PathProb-sClean.PathProb) > 1e-12 {
		t.Fatalf("lost probe perturbed path prob: %v vs %v", sLoss.PathProb, sClean.PathProb)
	}
	if got := len(withLoss.Steps()); got != 2 {
		t.Fatalf("steps = %d, want 2 (lost step is still recorded)", got)
	}
}

// TestBeliefStepLostFieldOmitted: fault-free recordings stay byte-stable —
// the lost marker only appears on lost steps.
func TestBeliefStepLostFieldOmitted(t *testing.T) {
	cfg := fig2cConfig(t)
	sel := newSelector(t, cfg, 0, 40)
	tr := sel.NewBeliefTracker()

	delivered, err := json.Marshal(tr.Observe(1, false))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(delivered), `"lost"`) {
		t.Fatalf("delivered step serialized a lost field: %s", delivered)
	}
	lost, err := json.Marshal(tr.ObserveLost(2))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(lost), `"lost":true`) {
		t.Fatalf("lost step missing lost marker: %s", lost)
	}
}

// TestDecideWithLossMatchesDecideWhenNothingLost: with an all-false loss
// mask the loss-tolerant path must agree with plain Decide on every
// outcome vector.
func TestDecideWithLossMatchesDecideWhenNothingLost(t *testing.T) {
	cfg := fig2cConfig(t)
	sel := newSelector(t, cfg, 0, 40)
	rng := stats.NewRNG(1)
	for _, mode := range []DecisionMode{DecideByQuery, DecideByPosterior} {
		a, err := NewModelAttacker(sel, sel.AllFlows(), 2, mode)
		if err != nil {
			t.Fatal(err)
		}
		for _, outcomes := range [][]bool{{false, false}, {false, true}, {true, false}, {true, true}} {
			want := a.Decide(outcomes, rng)
			got := a.DecideWithLoss(outcomes, []bool{false, false}, rng)
			if got != want {
				t.Fatalf("mode %v outcomes %v: DecideWithLoss %v, Decide %v", mode, outcomes, got, want)
			}
		}
	}
}

// TestDecideWithLossPartialLoss: losing one probe of two yields the
// posterior conditioned on only the delivered observation — identical to
// a belief-tracker replay that skips the lost index.
func TestDecideWithLossPartialLoss(t *testing.T) {
	cfg := fig2cConfig(t)
	sel := newSelector(t, cfg, 0, 40)
	a, err := NewModelAttacker(sel, sel.AllFlows(), 2, DecideByPosterior)
	if err != nil {
		t.Fatal(err)
	}
	probes := a.Probes()
	rng := stats.NewRNG(1)
	for _, second := range []bool{false, true} {
		tr := sel.NewBeliefTracker()
		tr.ObserveLost(probes[0])
		tr.Observe(probes[1], second)
		want := tr.Prior() > 0.5
		got := a.DecideWithLoss([]bool{false, second}, []bool{true, false}, rng)
		if got != want {
			t.Fatalf("second=%v: verdict %v, tracker replay wants %v (posterior %v)", second, got, want, tr.Prior())
		}
	}
}

// TestDecideWithLossAllLost: when every probe is lost the attacker falls
// back to its prior, deterministically.
func TestDecideWithLossAllLost(t *testing.T) {
	cfg := fig2cConfig(t)
	sel := newSelector(t, cfg, 0, 40)
	a, err := NewModelAttacker(sel, sel.AllFlows(), 2, DecideByPosterior)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(1)
	want := 1-sel.PAbsent() > 0.5
	if got := a.DecideWithLoss([]bool{true, true}, []bool{true, true}, rng); got != want {
		t.Fatalf("all-lost verdict %v, want prior-based %v", got, want)
	}
	// Stale outcome bits under the lost mask must not leak into the verdict.
	if got := a.DecideWithLoss([]bool{false, false}, []bool{true, true}, rng); got != want {
		t.Fatalf("all-lost verdict depends on masked outcome bits")
	}
}

// TestDecideWithLossQueryMode: DecideByQuery keeps its raw-first-outcome
// behaviour when the first probe was delivered, and falls back to the
// surviving observations when it was lost.
func TestDecideWithLossQueryMode(t *testing.T) {
	cfg := fig2cConfig(t)
	sel := newSelector(t, cfg, 0, 40)
	a, err := NewModelAttacker(sel, sel.AllFlows(), 2, DecideByQuery)
	if err != nil {
		t.Fatal(err)
	}
	probes := a.Probes()
	rng := stats.NewRNG(1)

	// First probe delivered: verdict is its raw outcome, regardless of
	// what happened to the rest of the sequence.
	if got := a.DecideWithLoss([]bool{true, false}, []bool{false, true}, rng); !got {
		t.Fatal("delivered first hit must decide true in query mode")
	}
	if got := a.DecideWithLoss([]bool{false, true}, []bool{false, true}, rng); got {
		t.Fatal("delivered first miss must decide false in query mode")
	}

	// First probe lost: fall back to the posterior over probe 2 alone.
	for _, second := range []bool{false, true} {
		tr := sel.NewBeliefTracker()
		tr.ObserveLost(probes[0])
		tr.Observe(probes[1], second)
		want := tr.Prior() > 0.5
		if got := a.DecideWithLoss([]bool{false, second}, []bool{true, false}, rng); got != want {
			t.Fatalf("lost-first query mode second=%v: verdict %v, want %v", second, got, want)
		}
	}
}
