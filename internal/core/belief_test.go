package core

import (
	"encoding/json"
	"math"
	"testing"

	"flowrecon/internal/flows"
	"flowrecon/internal/markov"
)

// TestBeliefTrackerMatchesSequenceEval checks the run-time belief update
// against the planning-time joint: for every outcome vector of a planned
// two-probe sequence, replaying the outcomes through a BeliefTracker
// must land on the decision tree's leaf posterior.
func TestBeliefTrackerMatchesSequenceEval(t *testing.T) {
	cfg := fig2cConfig(t)
	sel := newSelector(t, cfg, 0, 40)
	fs := []flows.ID{1, 2}
	eval := sel.EvaluateSequence(fs)
	for _, outcomes := range [][]bool{{false, false}, {false, true}, {true, false}, {true, true}} {
		tr := sel.NewBeliefTracker()
		if got, want := tr.Prior(), 1-sel.PAbsent(); math.Abs(got-want) > 1e-12 {
			t.Fatalf("initial prior = %v, want %v", got, want)
		}
		var last BeliefStep
		for i, hit := range outcomes {
			last = tr.Observe(fs[i], hit)
		}
		want := eval.PosteriorPresent[outcomeKey(outcomes)]
		if math.Abs(last.Posterior-want) > 1e-9 {
			t.Fatalf("outcomes %v: tracker posterior %v, leaf posterior %v", outcomes, last.Posterior, want)
		}
		wantPath := eval.PathProb[outcomeKey(outcomes)]
		if math.Abs(last.PathProb-wantPath) > 1e-9 {
			t.Fatalf("outcomes %v: tracker path prob %v, want %v", outcomes, last.PathProb, wantPath)
		}
		if len(tr.Steps()) != 2 {
			t.Fatalf("steps = %d, want 2", len(tr.Steps()))
		}
	}
}

// TestBeliefTrackerMatchesAdaptivePlan replays every root-to-leaf path of
// an adaptive plan through a BeliefTracker and compares posteriors.
func TestBeliefTrackerMatchesAdaptivePlan(t *testing.T) {
	cfg := fig2cConfig(t)
	sel := newSelector(t, cfg, 0, 40)
	root, err := sel.BuildAdaptiveTree(sel.AllFlows(), 2)
	if err != nil {
		t.Fatal(err)
	}
	var walk func(n *AdaptiveNode, outcomes []bool)
	walk = func(n *AdaptiveNode, outcomes []bool) {
		if n.Leaf {
			if n.PathProb <= 1e-12 {
				return // unreachable branch: tracker falls back to the prior
			}
			tr := sel.NewBeliefTracker()
			cur := root
			for _, hit := range outcomes {
				tr.Observe(cur.Probe, hit)
				if hit {
					cur = cur.Hit
				} else {
					cur = cur.Miss
				}
			}
			if math.Abs(tr.Prior()-n.PosteriorPresent) > 1e-9 {
				t.Fatalf("outcomes %v: tracker %v, plan node %v", outcomes, tr.Prior(), n.PosteriorPresent)
			}
			if got := root.PosteriorAfter(outcomes); math.Abs(got-n.PosteriorPresent) > 1e-12 {
				t.Fatalf("PosteriorAfter(%v) = %v, want %v", outcomes, got, n.PosteriorPresent)
			}
			return
		}
		walk(n.Miss, append(append([]bool(nil), outcomes...), false))
		walk(n.Hit, append(append([]bool(nil), outcomes...), true))
	}
	walk(root, nil)
}

func TestBeliefStepFields(t *testing.T) {
	cfg := fig2cConfig(t)
	sel := newSelector(t, cfg, 0, 40)
	tr := sel.NewBeliefTracker()
	step := tr.Observe(1, true)
	if step.Index != 0 || step.Probe != 1 || !step.Hit {
		t.Fatalf("identity fields wrong: %+v", step)
	}
	if step.Posterior < 0 || step.Posterior > 1 {
		t.Fatalf("posterior out of range: %v", step.Posterior)
	}
	if math.Abs(step.EntropyBits-binEntropy(step.Posterior)) > 1e-12 {
		t.Fatalf("entropy %v for posterior %v", step.EntropyBits, step.Posterior)
	}
	if math.Abs(step.GainBits-(binEntropy(step.Prior)-binEntropy(step.Posterior))) > 1e-12 {
		t.Fatalf("gain %v inconsistent with prior/posterior", step.GainBits)
	}
	if len(step.TopStates) == 0 || len(step.TopStates) > BeliefTrackerTopK {
		t.Fatalf("top states: %v", step.TopStates)
	}
	var sum float64
	prev := math.Inf(1)
	for _, sp := range step.TopStates {
		if sp.P > prev+1e-12 {
			t.Fatalf("top states not sorted: %v", step.TopStates)
		}
		prev = sp.P
		sum += sp.P
	}
	if sum > 1+1e-9 {
		t.Fatalf("top-state mass %v > 1", sum)
	}
	if _, err := json.Marshal(step); err != nil {
		t.Fatalf("belief step not JSON-encodable: %v", err)
	}
}

func binEntropy(p float64) float64 {
	h := 0.0
	for _, q := range []float64{p, 1 - p} {
		if q > 0 {
			h -= q * math.Log2(q)
		}
	}
	return h
}

func TestTopStates(t *testing.T) {
	d := markov.Dist{0.1, 0, 0.5, 0.2, 0.2}
	top := TopStates(d, 3)
	if len(top) != 3 || top[0].State != 2 {
		t.Fatalf("top = %v", top)
	}
	// Ties break toward the lower index.
	if top[1].State != 3 || top[2].State != 4 {
		t.Fatalf("tie break wrong: %v", top)
	}
	if math.Abs(top[0].P-0.5) > 1e-12 {
		t.Fatalf("normalization wrong: %v", top)
	}
	if TopStates(markov.Dist{0, 0}, 3) != nil {
		t.Fatal("zero-mass dist should yield nil")
	}
	if TopStates(d, 0) != nil {
		t.Fatal("k=0 should yield nil")
	}
}

func TestSequencePosteriorAfterPrefix(t *testing.T) {
	cfg := fig2cConfig(t)
	sel := newSelector(t, cfg, 0, 40)
	fs := []flows.ID{1, 2}
	eval := sel.EvaluateSequence(fs)

	// Leaf lookup.
	if post, ok := eval.PosteriorAfter([]bool{true, false}); !ok || post != eval.PosteriorPresent["10"] {
		t.Fatalf("leaf lookup: %v %v", post, ok)
	}
	// Prefix marginalization must match a fresh tracker's belief.
	tr := sel.NewBeliefTracker()
	tr.Observe(fs[0], true)
	post, ok := eval.PosteriorAfter([]bool{true})
	if !ok {
		t.Fatal("prefix lookup failed")
	}
	if math.Abs(post-tr.Prior()) > 1e-9 {
		t.Fatalf("prefix posterior %v, tracker %v", post, tr.Prior())
	}
	// Root prefix = the prior.
	post, ok = eval.PosteriorAfter(nil)
	if !ok || math.Abs(post-(1-sel.PAbsent())) > 1e-9 {
		t.Fatalf("root prefix posterior %v (ok=%v), want prior %v", post, ok, 1-sel.PAbsent())
	}
	// Longer than the plan: not in the tree.
	if _, ok := eval.PosteriorAfter([]bool{true, false, true}); ok {
		t.Fatal("over-long prefix should not resolve")
	}
}

func TestModelAttackerExposesSelector(t *testing.T) {
	cfg := fig2cConfig(t)
	sel := newSelector(t, cfg, 0, 40)
	a, err := NewModelAttacker(sel, sel.AllFlows(), 1, DecideByPosterior)
	if err != nil {
		t.Fatal(err)
	}
	var bp BeliefProvider = a
	if bp.Selector() != sel {
		t.Fatal("ModelAttacker.Selector() lost the selector")
	}
	ad, err := NewAdaptiveAttacker(sel, sel.AllFlows(), 2)
	if err != nil {
		t.Fatal(err)
	}
	bp = ad
	if bp.Selector() != sel {
		t.Fatal("AdaptiveAttacker.Selector() lost the selector")
	}
}
