package core

import (
	"math"
	"testing"
	"testing/quick"

	"flowrecon/internal/flows"
	"flowrecon/internal/rules"
	"flowrecon/internal/stats"
)

// randomConfig derives a small random model configuration from a seed, for
// property-based testing of model invariants.
func randomConfig(seed int64) (Config, bool) {
	rng := stats.NewRNG(seed)
	nflows := 3 + rng.Intn(4) // 3..6 flows
	nrules := 2 + rng.Intn(3) // 2..4 rules
	cache := 1 + rng.Intn(3)  // 1..3 slots
	rl := make([]rules.Rule, 0, nrules)
	prios := rng.Perm(nrules)
	for i := 0; i < nrules; i++ {
		cover := flows.NewSet(nflows)
		for f := 0; f < nflows; f++ {
			if rng.Bernoulli(0.4) {
				cover.Add(flows.ID(f))
			}
		}
		if cover.Empty() {
			cover.Add(flows.ID(rng.Intn(nflows)))
		}
		kind := rules.IdleTimeout
		if rng.Bernoulli(0.2) {
			kind = rules.HardTimeout
		}
		rl = append(rl, rules.Rule{
			Cover:    cover,
			Priority: prios[i] + 1,
			Timeout:  1 + rng.Intn(5),
			Kind:     kind,
		})
	}
	rs, err := rules.NewSet(rl)
	if err != nil {
		return Config{}, false
	}
	rates := make([]float64, nflows)
	for i := range rates {
		rates[i] = rng.Uniform(0.05, 1)
	}
	return Config{Rules: rs, Rates: rates, Delta: 0.1, CacheSize: cache}, true
}

// TestPropertyCompactStochastic: every randomly generated compact model
// must have a row-stochastic transition matrix and conserve probability
// mass under evolution.
func TestPropertyCompactStochastic(t *testing.T) {
	f := func(seed int64) bool {
		cfg, ok := randomConfig(seed)
		if !ok {
			return true
		}
		m, err := NewCompactModel(cfg, DefaultUSumParams())
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if err := m.Matrix().CheckStochastic(1e-9); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		d := m.Evolve(m.InitialDist(), 25)
		return math.Abs(d.Sum()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyBasicStochastic: the exact chain must be stochastic too, and
// its reachable state count must respect the closed-form bound.
func TestPropertyBasicStochastic(t *testing.T) {
	f := func(seed int64) bool {
		cfg, ok := randomConfig(seed)
		if !ok {
			return true
		}
		m, err := NewBasicModel(cfg, 1<<20)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		touts := make([]int, cfg.Rules.Len())
		for i := range touts {
			touts[i] = cfg.Rules.Rule(i).Timeout
		}
		if float64(m.NumStates()) > BasicStateCount(touts, cfg.CacheSize) {
			t.Logf("seed %d: reachable %d exceeds closed form", seed, m.NumStates())
			return false
		}
		d := m.Evolve(m.InitialDist(), 25)
		return math.Abs(d.Sum()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCanonicalNoLarger: merging cache order can only shrink the
// reachable state space, and both variants must agree on hit
// probabilities (behaviour is order-independent).
func TestPropertyCanonicalNoLarger(t *testing.T) {
	f := func(seed int64) bool {
		cfg, ok := randomConfig(seed)
		if !ok {
			return true
		}
		ordered, err := NewBasicModel(cfg, 1<<20)
		if err != nil {
			return false
		}
		canonical, err := NewBasicModelCanonical(cfg, 1<<20)
		if err != nil {
			return false
		}
		if canonical.NumStates() > ordered.NumStates() {
			t.Logf("seed %d: canonical %d > ordered %d", seed, canonical.NumStates(), ordered.NumStates())
			return false
		}
		do := ordered.Evolve(ordered.InitialDist(), 20)
		dc := canonical.Evolve(canonical.InitialDist(), 20)
		for fid := 0; fid < len(cfg.Rates); fid++ {
			po := ordered.HitProbability(do, flows.ID(fid))
			pc := canonical.HitProbability(dc, flows.ID(fid))
			// Tie-breaking in eviction/timeout can differ between the
			// encodings, so allow a small numerical band.
			if math.Abs(po-pc) > 0.02 {
				t.Logf("seed %d flow %d: ordered %v vs canonical %v", seed, fid, po, pc)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyInformationGain: for any random config and target, every
// probe's information gain lies in [0, H(X̂)] and the joint distribution
// is a valid probability table.
func TestPropertyInformationGain(t *testing.T) {
	f := func(seed int64) bool {
		cfg, ok := randomConfig(seed)
		if !ok {
			return true
		}
		target := flows.ID(int(uint64(seed)>>8) % len(cfg.Rates))
		sel, err := NewCompactSelector(cfg, target, 20, DefaultUSumParams())
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		h := sel.PriorEntropy()
		for _, fid := range sel.AllFlows() {
			e := sel.Evaluate(fid)
			if e.Gain < 0 || e.Gain > h+1e-9 {
				t.Logf("seed %d flow %d: gain %v prior %v", seed, fid, e.Gain, h)
				return false
			}
			var total float64
			for x := 0; x < 2; x++ {
				for q := 0; q < 2; q++ {
					if e.Joint[x][q] < -1e-12 {
						return false
					}
					total += e.Joint[x][q]
				}
			}
			if math.Abs(total-1) > 1e-6 {
				t.Logf("seed %d flow %d: joint mass %v", seed, fid, total)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyProbePreservesMass: ApplyProbe must move probability, never
// create or destroy it, for both hit and miss outcomes on both models.
func TestPropertyProbePreservesMass(t *testing.T) {
	f := func(seed int64) bool {
		cfg, ok := randomConfig(seed)
		if !ok {
			return true
		}
		m, err := NewCompactModel(cfg, DefaultUSumParams())
		if err != nil {
			return false
		}
		d := m.Evolve(m.InitialDist(), 15)
		for fid := 0; fid < len(cfg.Rates); fid++ {
			hit, miss := m.SplitByHit(d, flows.ID(fid))
			if math.Abs(hit.Sum()+miss.Sum()-1) > 1e-9 {
				return false
			}
			after := m.ApplyProbe(miss, flows.ID(fid), false)
			if math.Abs(after.Sum()-miss.Sum()) > 1e-9 {
				t.Logf("seed %d flow %d: install mass %v → %v", seed, fid, miss.Sum(), after.Sum())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyEvictionDistributions: the per-state §IV-B estimates must be
// probability distributions with timeout probabilities in [0, 1].
func TestPropertyEvictionDistributions(t *testing.T) {
	f := func(seed int64) bool {
		cfg, ok := randomConfig(seed)
		if !ok {
			return true
		}
		m, err := NewCompactModel(cfg, DefaultUSumParams())
		if err != nil {
			return false
		}
		for i := 0; i < m.NumStates(); i++ {
			est := m.Estimates(i)
			if len(est.Evict) == 0 {
				continue
			}
			var sum float64
			for _, p := range est.Evict {
				if p < -1e-12 {
					return false
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Logf("seed %d state %d: eviction sums to %v", seed, i, sum)
				return false
			}
			for _, p := range est.Timeout {
				if p < 0 || p > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
