package core

import (
	"math"
	"strings"

	"flowrecon/internal/flows"
	"flowrecon/internal/markov"
	"flowrecon/internal/stats"
)

// SequenceEval is the evaluation of an ordered, non-adaptively chosen
// sequence of probe flows (§V-B). Outcomes are keyed by a bitstring such
// as "10": probe 1 hit, probe 2 missed.
type SequenceEval struct {
	// Flows are the probes in send order.
	Flows []flows.ID
	// Gain is IG(X̂ | Q_{f1}, …, Q_{fm}) in bits.
	Gain float64
	// PathProb[outcomes] is P(Q⃗ = outcomes).
	PathProb map[string]float64
	// PosteriorPresent[outcomes] is P(X̂ = 1 | Q⃗ = outcomes) — the leaves
	// of the paper's decision tree.
	PosteriorPresent map[string]float64
}

// Decide returns the decision-tree verdict for observed outcomes: present
// iff the posterior exceeds ½.
func (e SequenceEval) Decide(outcomes []bool) bool {
	return e.PosteriorPresent[outcomeKey(outcomes)] > 0.5
}

// PosteriorAfter returns P(X̂ = 1 | Q⃗ = outcomes) for any observed
// outcome prefix: full-length outcome vectors read the decision-tree
// leaf directly, shorter prefixes marginalize over the leaves below
// them (P(X̂=1 | prefix) = Σ_leaf P(leaf)·P(X̂=1 | leaf) / P(prefix)).
// ok is false when the prefix is outside the evaluated tree (longer
// than the planned sequence, or a zero-probability branch).
func (e SequenceEval) PosteriorAfter(outcomes []bool) (post float64, ok bool) {
	key := outcomeKey(outcomes)
	if post, ok = e.PosteriorPresent[key]; ok {
		return post, true
	}
	var mass, present float64
	for leaf, p := range e.PathProb {
		if strings.HasPrefix(leaf, key) {
			mass += p
			present += p * e.PosteriorPresent[leaf]
		}
	}
	if mass <= 0 {
		return 0, false
	}
	return present / mass, true
}

func outcomeKey(outcomes []bool) string {
	b := make([]byte, len(outcomes))
	for i, hit := range outcomes {
		if hit {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

// inPlaceProber is implemented by models providing allocation-free probe
// kernels (CompactModel). Other models fall back to the allocating path.
type inPlaceProber interface {
	SplitByHitInto(d markov.Dist, f flows.ID, hit, miss markov.Dist)
	ApplyProbeInto(dst, d markov.Dist, f flows.ID, hit bool)
}

func splitInto(m Model, d markov.Dist, f flows.ID, hit, miss markov.Dist) {
	if ip, ok := m.(inPlaceProber); ok {
		ip.SplitByHitInto(d, f, hit, miss)
		return
	}
	h, ms := m.SplitByHit(d, f)
	copy(hit, h)
	copy(miss, ms)
}

func applyInto(m Model, dst, d markov.Dist, f flows.ID, hit bool) {
	if ip, ok := m.(inPlaceProber); ok {
		ip.ApplyProbeInto(dst, d, f, hit)
		return
	}
	copy(dst, m.ApplyProbe(d, f, hit))
}

// seqLevel holds one tree depth's scratch distributions: the hit/miss
// splits of both chains plus the post-probe buffers handed to the child.
// The two sibling branches are walked sequentially, so the app buffers
// are safely reused between them.
type seqLevel struct {
	hit, miss, app    markov.Dist
	hit0, miss0, app0 markov.Dist
}

type seqArena struct{ levels []seqLevel }

// arenaFor returns a per-call arena with at least depth levels sized for
// the selector's chains, recycled through a pool so BestSequence's
// candidate scans stop allocating per tree node.
func (s *ProbeSelector) arenaFor(depth int) *seqArena {
	a, _ := s.seqPool.Get().(*seqArena)
	if a == nil {
		a = &seqArena{}
	}
	n, n0 := len(s.dist), len(s.dist0)
	for len(a.levels) < depth {
		a.levels = append(a.levels, seqLevel{
			hit: make(markov.Dist, n), miss: make(markov.Dist, n), app: make(markov.Dist, n),
			hit0: make(markov.Dist, n0), miss0: make(markov.Dist, n0), app0: make(markov.Dist, n0),
		})
	}
	return a
}

// EvaluateSequence computes the joint distribution of (X̂, Q_{f1..fm}) by
// walking the outcome tree. Each probe conditions the state distribution
// on its observed outcome and applies the probe's cache side effect (a
// missing probe installs its covering rule; a hit refreshes it), exactly
// the incremental adjustment §V-B prescribes. The walk runs over pooled
// per-depth scratch buffers through the in-place model kernels — the
// former implementation cloned four distributions per tree node.
func (s *ProbeSelector) EvaluateSequence(fs []flows.ID) SequenceEval {
	eval := SequenceEval{
		Flows:            append([]flows.ID(nil), fs...),
		PathProb:         make(map[string]float64, 1<<uint(len(fs))),
		PosteriorPresent: make(map[string]float64, 1<<uint(len(fs))),
	}
	var hCond float64
	arena := s.arenaFor(len(fs))

	var walk func(depth int, key string, d, d0 markov.Dist)
	walk = func(depth int, key string, d, d0 markov.Dist) {
		if depth == len(fs) {
			pq := d.Sum()               // P(Q⃗ = key)
			pq0 := s.pAbsent * d0.Sum() // P(X̂=0 ∧ Q⃗ = key)
			pq1 := clamp01(pq - pq0)    // P(X̂=1 ∧ Q⃗ = key)
			eval.PathProb[key] = pq
			if pq > 0 {
				eval.PosteriorPresent[key] = pq1 / pq
			} else {
				eval.PosteriorPresent[key] = 1 - s.pAbsent
			}
			hCond += stats.ConditionalEntropyBits([][]float64{{pq0}, {pq1}})
			return
		}
		f := fs[depth]
		lv := &arena.levels[depth]
		splitInto(s.model, d, f, lv.hit, lv.miss)
		splitInto(s.model0, d0, f, lv.hit0, lv.miss0)
		applyInto(s.model, lv.app, lv.miss, f, false)
		applyInto(s.model0, lv.app0, lv.miss0, f, false)
		walk(depth+1, key+"0", lv.app, lv.app0)
		applyInto(s.model, lv.app, lv.hit, f, true)
		applyInto(s.model0, lv.app0, lv.hit0, f, true)
		walk(depth+1, key+"1", lv.app, lv.app0)
	}
	walk(0, "", s.dist, s.dist0)
	s.seqPool.Put(arena)

	eval.Gain = s.PriorEntropy() - hCond
	if eval.Gain < 0 {
		eval.Gain = 0
	}
	return eval
}

// BestSequence selects m probes from candidates with maximal information
// gain. For m ≤ 2 it searches ordered sequences exhaustively (the paper's
// two-query attacker); for larger m it extends the best sequence greedily,
// one probe per round.
func (s *ProbeSelector) BestSequence(candidates []flows.ID, m int) (SequenceEval, bool) {
	if len(candidates) == 0 || m < 1 {
		return SequenceEval{}, false
	}
	if m == 1 {
		return s.bestOver(sequencesOfOne(candidates))
	}
	if m == 2 {
		return s.bestOver(sequencesOfTwo(candidates))
	}
	// Greedy extension.
	best, _ := s.bestOver(sequencesOfOne(candidates))
	for len(best.Flows) < m {
		var round [][]flows.ID
		for _, f := range candidates {
			if containsFlow(best.Flows, f) {
				continue
			}
			round = append(round, append(append([]flows.ID(nil), best.Flows...), f))
		}
		if len(round) == 0 {
			break
		}
		next, ok := s.bestOver(round)
		if !ok || next.Gain <= best.Gain+1e-15 {
			break // no probe adds information
		}
		best = next
	}
	return best, true
}

func (s *ProbeSelector) bestOver(seqs [][]flows.ID) (SequenceEval, bool) {
	var best SequenceEval
	found := false
	for _, fs := range seqs {
		e := s.EvaluateSequence(fs)
		if !found || e.Gain > best.Gain {
			best, found = e, true
		}
	}
	return best, found
}

func sequencesOfOne(candidates []flows.ID) [][]flows.ID {
	out := make([][]flows.ID, len(candidates))
	for i, f := range candidates {
		out[i] = []flows.ID{f}
	}
	return out
}

func sequencesOfTwo(candidates []flows.ID) [][]flows.ID {
	var out [][]flows.ID
	for _, a := range candidates {
		for _, b := range candidates {
			if a == b {
				continue
			}
			out = append(out, []flows.ID{a, b})
		}
	}
	return out
}

func containsFlow(fs []flows.ID, f flows.ID) bool {
	for _, x := range fs {
		if x == f {
			return true
		}
	}
	return false
}

// SequenceGainAtLeastSingle is a diagnostic: the best pair's gain can never
// be below the best single probe's gain when the pair search includes that
// probe. It returns the two gains for assertion in tests and benchmarks.
func (s *ProbeSelector) SequenceGainAtLeastSingle(candidates []flows.ID) (single, pair float64) {
	b1, ok1 := s.Best(candidates)
	if ok1 {
		single = b1.Gain
	}
	b2, ok2 := s.BestSequence(candidates, 2)
	if ok2 {
		pair = b2.Gain
	}
	if math.IsNaN(pair) {
		pair = 0
	}
	return single, pair
}
