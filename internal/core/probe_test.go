package core

import (
	"math"
	"testing"

	"flowrecon/internal/flows"
	"flowrecon/internal/rules"
	"flowrecon/internal/stats"
)

// fig2cConfig builds the paper's Figure 2c scenario: rule1 covers {f1,f2}
// (high priority), rule2 covers {f1,f3} (low priority). The paper argues
// the optimal probe for target f1 is f2, because a hit on f2 certifies
// rule1, which only f1 or f2 can install — and f2 is rare.
func fig2cConfig(t *testing.T) Config {
	t.Helper()
	rs, err := rules.NewSet([]rules.Rule{
		{Name: "rule1", Cover: flows.SetOf(0, 1), Priority: 2, Timeout: 6},
		{Name: "rule2", Cover: flows.SetOf(0, 2), Priority: 1, Timeout: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Rules:     rs,
		Rates:     []float64{0.35, 0.02, 1.2}, // f1 moderate, f2 rare, f3 noisy
		Delta:     0.25,
		CacheSize: 2,
	}
}

func newSelector(t *testing.T, cfg Config, target flows.ID, steps int) *ProbeSelector {
	t.Helper()
	sel, err := NewCompactSelector(cfg, target, steps, DefaultUSumParams())
	if err != nil {
		t.Fatal(err)
	}
	return sel
}

func TestSelectorPriors(t *testing.T) {
	cfg := fig2cConfig(t)
	const steps = 40
	sel := newSelector(t, cfg, 0, steps)
	want := math.Exp(-0.35 * 0.25 * steps)
	if math.Abs(sel.PAbsent()-want) > 1e-12 {
		t.Fatalf("PAbsent = %v, want %v", sel.PAbsent(), want)
	}
	if h := sel.PriorEntropy(); h <= 0 || h > 1 {
		t.Fatalf("prior entropy = %v", h)
	}
	if sel.Target() != 0 || sel.Steps() != steps {
		t.Fatal("accessors wrong")
	}
}

func TestSelectorValidation(t *testing.T) {
	cfg := fig2cConfig(t)
	if _, err := NewCompactSelector(cfg, 99, 10, DefaultUSumParams()); err == nil {
		t.Fatal("out-of-universe target accepted")
	}
	if _, err := NewCompactSelector(cfg, 0, 0, DefaultUSumParams()); err == nil {
		t.Fatal("zero window accepted")
	}
}

func TestEvaluateJointConsistency(t *testing.T) {
	cfg := fig2cConfig(t)
	sel := newSelector(t, cfg, 0, 40)
	for _, f := range sel.AllFlows() {
		e := sel.Evaluate(f)
		var total float64
		for x := 0; x < 2; x++ {
			for q := 0; q < 2; q++ {
				if e.Joint[x][q] < -1e-12 {
					t.Fatalf("flow %d: negative joint %v", f, e.Joint)
				}
				total += e.Joint[x][q]
			}
		}
		if math.Abs(total-1) > 1e-6 {
			t.Fatalf("flow %d: joint mass = %v", f, total)
		}
		if pa := e.Joint[0][0] + e.Joint[0][1]; math.Abs(pa-sel.PAbsent()) > 1e-9 {
			t.Fatalf("flow %d: P(X̂=0) from joint = %v, want %v", f, pa, sel.PAbsent())
		}
		if e.Gain < 0 {
			t.Fatalf("flow %d: negative information gain %v", f, e.Gain)
		}
		if e.Gain > sel.PriorEntropy()+1e-9 {
			t.Fatalf("flow %d: gain %v exceeds prior entropy %v", f, e.Gain, sel.PriorEntropy())
		}
		if hp := e.Joint[0][1] + e.Joint[1][1]; math.Abs(hp-e.PHit) > 1e-9 {
			t.Fatalf("flow %d: P(Q=1) inconsistent: %v vs %v", f, hp, e.PHit)
		}
	}
}

func TestFigure2cOptimalProbeIsNotTarget(t *testing.T) {
	cfg := fig2cConfig(t)
	sel := newSelector(t, cfg, 0, 40)
	best, ok := sel.Best(sel.AllFlows())
	if !ok {
		t.Fatal("no best probe")
	}
	if best.Flow != 1 {
		for _, f := range sel.AllFlows() {
			e := sel.Evaluate(f)
			t.Logf("flow %d: gain=%.4f phit=%.3f", f, e.Gain, e.PHit)
		}
		t.Fatalf("optimal probe = flow %d, want f2 (flow 1) per Figure 2c", best.Flow)
	}
	// And a hit on f2 should strongly indicate the target occurred.
	if best.PostPresentGivenHit < 0.5 {
		t.Fatalf("P(X̂=1 | Q_{f2}=1) = %v", best.PostPresentGivenHit)
	}
}

func TestProbeEvalPosteriors(t *testing.T) {
	cfg := fig2cConfig(t)
	sel := newSelector(t, cfg, 0, 40)
	e := sel.Evaluate(1)
	ph := e.PosteriorPresent(true)
	pm := e.PosteriorPresent(false)
	if ph < 0 || ph > 1 || pm < 0 || pm > 1 {
		t.Fatalf("posteriors out of range: %v %v", ph, pm)
	}
	if ph <= pm {
		t.Fatalf("hit posterior %v should exceed miss posterior %v for a positively informative probe", ph, pm)
	}
}

func TestDetectorViable(t *testing.T) {
	e := ProbeEval{PostAbsentGivenMiss: 0.8, PostPresentGivenHit: 0.7}
	if !e.DetectorViable() {
		t.Fatal("viable detector rejected")
	}
	e.PostPresentGivenHit = 0.4
	if e.DetectorViable() {
		t.Fatal("non-viable detector accepted")
	}
}

func TestFlowsExcept(t *testing.T) {
	cfg := fig2cConfig(t)
	sel := newSelector(t, cfg, 0, 10)
	rest := sel.FlowsExcept(0)
	if len(rest) != 2 {
		t.Fatalf("rest = %v", rest)
	}
	for _, f := range rest {
		if f == 0 {
			t.Fatal("excluded flow present")
		}
	}
}

// --- multi-probe ---

// fig2bConfig: rule1 covers f1 (high priority), rule2 covers {f1,f2}. The
// paper's §III-B argument: probing both f1 and f2 and seeing f1 hit while
// f2 misses certifies rule1 and hence f1's occurrence.
func fig2bConfig(t *testing.T) Config {
	t.Helper()
	rs, err := rules.NewSet([]rules.Rule{
		{Name: "rule1", Cover: flows.SetOf(0), Priority: 2, Timeout: 6},
		{Name: "rule2", Cover: flows.SetOf(0, 1), Priority: 1, Timeout: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Rules:     rs,
		Rates:     []float64{0.3, 0.8},
		Delta:     0.25,
		CacheSize: 2,
	}
}

func TestSequenceGainDominatesSingle(t *testing.T) {
	for _, mk := range []func(*testing.T) Config{fig2bConfig, fig2cConfig} {
		cfg := mk(t)
		sel := newSelector(t, cfg, 0, 40)
		single, pair := sel.SequenceGainAtLeastSingle(sel.AllFlows())
		if pair+1e-9 < single {
			t.Fatalf("pair gain %v < single gain %v", pair, single)
		}
	}
}

func TestSequencePathProbsSumToOne(t *testing.T) {
	cfg := fig2bConfig(t)
	sel := newSelector(t, cfg, 0, 40)
	e := sel.EvaluateSequence([]flows.ID{0, 1})
	var total float64
	for _, p := range e.PathProb {
		if p < -1e-12 {
			t.Fatalf("negative path probability: %v", e.PathProb)
		}
		total += p
	}
	if math.Abs(total-1) > 1e-6 {
		t.Fatalf("path probabilities sum to %v", total)
	}
	if len(e.PathProb) != 4 {
		t.Fatalf("paths = %v", e.PathProb)
	}
	for key, post := range e.PosteriorPresent {
		if post < -1e-9 || post > 1+1e-9 {
			t.Fatalf("posterior[%s] = %v", key, post)
		}
	}
}

func TestFigure2bHitMissCertifiesTarget(t *testing.T) {
	cfg := fig2bConfig(t)
	sel := newSelector(t, cfg, 0, 40)
	e := sel.EvaluateSequence([]flows.ID{0, 1})
	// Outcome "10": f1 hit, f2 missed ⇒ rule1 cached and rule2 absent ⇒
	// only f1 itself can have installed rule1 ⇒ the target occurred.
	post := e.PosteriorPresent["10"]
	if post < 0.9 {
		t.Fatalf("P(X̂=1 | f1 hit, f2 miss) = %v, want ≈ 1 (Figure 2b)", post)
	}
	if !e.Decide([]bool{true, false}) {
		t.Fatal("decision tree should declare present for outcome 10")
	}
}

func TestBestSequence(t *testing.T) {
	cfg := fig2bConfig(t)
	sel := newSelector(t, cfg, 0, 40)
	if _, ok := sel.BestSequence(nil, 2); ok {
		t.Fatal("empty candidates accepted")
	}
	if _, ok := sel.BestSequence(sel.AllFlows(), 0); ok {
		t.Fatal("zero probes accepted")
	}
	one, ok := sel.BestSequence(sel.AllFlows(), 1)
	if !ok || len(one.Flows) != 1 {
		t.Fatalf("m=1 sequence = %+v", one)
	}
	two, ok := sel.BestSequence(sel.AllFlows(), 2)
	if !ok || len(two.Flows) != 2 {
		t.Fatalf("m=2 sequence = %+v", two)
	}
	if two.Gain+1e-9 < one.Gain {
		t.Fatal("two probes worse than one")
	}
	three, ok := sel.BestSequence(sel.AllFlows(), 3)
	if !ok {
		t.Fatal("greedy m=3 failed")
	}
	if three.Gain+1e-9 < two.Gain {
		t.Fatal("greedy extension lost information")
	}
}

// --- attackers ---

func TestNaiveAttacker(t *testing.T) {
	a := &NaiveAttacker{TargetFlow: 5}
	if a.Name() != "naive" {
		t.Fatal("name")
	}
	probes := a.Probes()
	if len(probes) != 1 || probes[0] != 5 {
		t.Fatalf("probes = %v", probes)
	}
	if !a.Decide([]bool{true}, nil) || a.Decide([]bool{false}, nil) || a.Decide(nil, nil) {
		t.Fatal("naive decision wrong")
	}
}

func TestModelAttackerSingle(t *testing.T) {
	cfg := fig2cConfig(t)
	sel := newSelector(t, cfg, 0, 40)
	a, err := NewModelAttacker(sel, sel.AllFlows(), 1, DecideByQuery)
	if err != nil {
		t.Fatal(err)
	}
	probes := a.Probes()
	if len(probes) != 1 || probes[0] != 1 {
		t.Fatalf("probes = %v (expected the Figure 2c optimum)", probes)
	}
	if !a.Decide([]bool{true}, nil) || a.Decide([]bool{false}, nil) {
		t.Fatal("query-mode decision wrong")
	}
	if a.PlannedEval().Flow != 1 {
		t.Fatal("planned eval missing")
	}

	post, err := NewModelAttacker(sel, sel.AllFlows(), 1, DecideByPosterior)
	if err != nil {
		t.Fatal(err)
	}
	// For a viable detector probe, posterior mode matches query mode.
	if post.PlannedEval().DetectorViable() {
		if post.Decide([]bool{true}, nil) != true || post.Decide([]bool{false}, nil) != false {
			t.Fatal("posterior mode disagrees with query mode on a viable detector")
		}
	}
}

func TestModelAttackerMulti(t *testing.T) {
	cfg := fig2bConfig(t)
	sel := newSelector(t, cfg, 0, 40)
	a, err := NewModelAttacker(sel, sel.AllFlows(), 2, DecideByPosterior)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Probes()) != 2 {
		t.Fatalf("probes = %v", a.Probes())
	}
	// Smoke-test decisions for all outcomes.
	for _, outcomes := range [][]bool{{false, false}, {false, true}, {true, false}, {true, true}} {
		_ = a.Decide(outcomes, nil)
	}
	if _, err := NewModelAttacker(sel, nil, 1, DecideByQuery); err == nil {
		t.Fatal("no candidates accepted")
	}
	if _, err := NewModelAttacker(sel, sel.AllFlows(), 0, DecideByQuery); err == nil {
		t.Fatal("zero probes accepted")
	}
}

func TestRandomAttacker(t *testing.T) {
	a := &RandomAttacker{PPresent: 0.75}
	if a.Name() != "random" || a.Probes() != nil {
		t.Fatal("random attacker shape")
	}
	rng := stats.NewRNG(4)
	n := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if a.Decide(nil, rng) {
			n++
		}
	}
	if got := float64(n) / trials; math.Abs(got-0.75) > 0.02 {
		t.Fatalf("P(present) = %v", got)
	}
}

// TestConditionedChainClosedForm cross-checks the conditional-chain
// construction: with the target's rate zeroed, the conditioned chain must
// never cache a rule only the target could install.
func TestConditionedChainClosedForm(t *testing.T) {
	rs, err := rules.NewSet([]rules.Rule{
		{Name: "only-target", Cover: flows.SetOf(0), Priority: 2, Timeout: 5},
		{Name: "other", Cover: flows.SetOf(1), Priority: 1, Timeout: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Rules: rs, Rates: []float64{0.5, 0.5}, Delta: 0.2, CacheSize: 2}
	m0, err := NewCompactModel(cfg.withoutFlow(0), DefaultUSumParams())
	if err != nil {
		t.Fatal(err)
	}
	d := m0.Evolve(m0.InitialDist(), 50)
	if p := m0.CachedProbability(d, 0); p != 0 {
		t.Fatalf("conditioned chain cached the target-only rule with P=%v", p)
	}
	if p := m0.CachedProbability(d, 1); p <= 0 {
		t.Fatal("conditioned chain never cached the other rule")
	}
}

// --- adaptive probing (extension) ---

func TestAdaptiveTreeStructure(t *testing.T) {
	cfg := fig2bConfig(t)
	sel := newSelector(t, cfg, 0, 40)
	tree, err := sel.BuildAdaptiveTree(sel.AllFlows(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Leaf {
		t.Fatal("root is a leaf on an informative configuration")
	}
	if math.Abs(tree.PathProb-1) > 1e-9 {
		t.Fatalf("root path prob = %v", tree.PathProb)
	}
	// Path probabilities of the frontier must sum to 1.
	var total float64
	var walk func(n *AdaptiveNode)
	walk = func(n *AdaptiveNode) {
		if n.Leaf {
			total += n.PathProb
			return
		}
		walk(n.Miss)
		walk(n.Hit)
	}
	walk(tree)
	if math.Abs(total-1) > 1e-6 {
		t.Fatalf("leaf path probabilities sum to %v", total)
	}
}

func TestAdaptiveGainDominatesNonAdaptive(t *testing.T) {
	for _, mk := range []func(*testing.T) Config{fig2bConfig, fig2cConfig} {
		cfg := mk(t)
		sel := newSelector(t, cfg, 0, 40)
		tree, err := sel.BuildAdaptiveTree(sel.AllFlows(), 2)
		if err != nil {
			t.Fatal(err)
		}
		adaptive := sel.ExpectedGain(tree)
		pair, ok := sel.BestSequence(sel.AllFlows(), 2)
		if !ok {
			t.Fatal("no pair")
		}
		if adaptive+1e-9 < pair.Gain {
			t.Fatalf("adaptive gain %v below non-adaptive %v", adaptive, pair.Gain)
		}
	}
}

func TestAdaptiveAttacker(t *testing.T) {
	cfg := fig2bConfig(t)
	sel := newSelector(t, cfg, 0, 40)
	a, err := NewAdaptiveAttacker(sel, sel.AllFlows(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() == "" || a.Tree() == nil {
		t.Fatal("attacker shape")
	}
	first := a.Probes()
	if len(first) != 1 {
		t.Fatalf("first probes = %v", first)
	}
	if f, ok := a.NextProbe(nil); !ok || f != first[0] {
		t.Fatalf("NextProbe(∅) = %v %v", f, ok)
	}
	// Walk both outcomes of the first probe.
	for _, hit := range []bool{false, true} {
		f2, more := a.NextProbe([]bool{hit})
		if more {
			if f2 == first[0] && hit {
				// Re-probing a flow that just hit adds no information;
				// the greedy planner should avoid it unless the install
				// changed the state. Accept but log.
				t.Logf("re-probed %v after hit", f2)
			}
			_ = a.Decide([]bool{hit, true}, nil)
		}
		_ = a.Decide([]bool{hit}, nil)
	}
	if _, err := NewAdaptiveAttacker(sel, nil, 1); err == nil {
		t.Fatal("empty candidates accepted")
	}
	if _, err := NewAdaptiveAttacker(sel, sel.AllFlows(), 0); err == nil {
		t.Fatal("zero depth accepted")
	}
}

// TestSelectorBasicVsCompact cross-validates probe selection across the
// two models: on a configuration both can represent, the exact basic
// model and the approximate compact model must broadly agree on every
// probe's hit probability and rank the same probe (or a near-tie) best.
func TestSelectorBasicVsCompact(t *testing.T) {
	cfg := fig2cConfig(t)
	const steps = 40

	basic, err := NewBasicModel(cfg, 1<<21)
	if err != nil {
		t.Fatal(err)
	}
	basic0, err := NewBasicModel(cfg.withoutFlow(0), 1<<21)
	if err != nil {
		t.Fatal(err)
	}
	selBasic, err := NewProbeSelector(basic, basic0, 0, steps)
	if err != nil {
		t.Fatal(err)
	}
	selCompact := newSelector(t, cfg, 0, steps)

	for _, f := range selCompact.AllFlows() {
		eb := selBasic.Evaluate(f)
		ec := selCompact.Evaluate(f)
		if math.Abs(eb.PHit-ec.PHit) > 0.1 {
			t.Errorf("flow %d: P(hit) basic %.3f vs compact %.3f", f, eb.PHit, ec.PHit)
		}
	}
	bestB, _ := selBasic.Best(selBasic.AllFlows())
	bestC, _ := selCompact.Best(selCompact.AllFlows())
	if bestB.Flow != bestC.Flow {
		// Accept a near-tie: the compact winner must be within 20% of
		// the basic model's best gain under the basic model.
		alt := selBasic.Evaluate(bestC.Flow)
		if alt.Gain < 0.8*bestB.Gain {
			t.Fatalf("models disagree on the optimal probe: basic→%d (%.4f) compact→%d (%.4f under basic)",
				bestB.Flow, bestB.Gain, bestC.Flow, alt.Gain)
		}
	}
}

// TestMicroflowRulesGivePerfectAttribution is the §III-B1 granularity
// observation: with microflow rules (one rule per flow), a hit on the
// target's rule certifies the target itself, so P(X̂=1 | hit) = 1.
func TestMicroflowRulesGivePerfectAttribution(t *testing.T) {
	rs, err := rules.NewSet([]rules.Rule{
		{Name: "micro-target", Cover: flows.SetOf(0), Priority: 2, Timeout: 8},
		{Name: "micro-other", Cover: flows.SetOf(1), Priority: 1, Timeout: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Rules: rs, Rates: []float64{0.25, 0.9}, Delta: 0.25, CacheSize: 2}
	sel := newSelector(t, cfg, 0, 20)
	e := sel.Evaluate(0)
	if math.Abs(e.PostPresentGivenHit-1) > 1e-6 {
		t.Fatalf("P(present | hit) = %v, want 1 for a microflow rule", e.PostPresentGivenHit)
	}
	// And the target is its own best probe: no other flow can inform.
	best, _ := sel.Best(sel.AllFlows())
	if best.Flow != 0 {
		t.Fatalf("best probe = %d, want the target under microflow rules", best.Flow)
	}
}

func TestGainVsWindow(t *testing.T) {
	cfg := fig2cConfig(t)
	points, err := GainVsWindow(cfg, 0, []int{5, 20, 80, 400}, DefaultUSumParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	for i, p := range points {
		if p.Best.Gain < 0 {
			t.Fatalf("window %d: negative gain", p.Steps)
		}
		if i > 0 && p.PAbsent >= points[i-1].PAbsent {
			t.Fatal("absence must decay with the window")
		}
	}
	// The channel remembers ~one TTL (6 steps here): asking about a
	// 400-step past must be far less answerable than a 20-step past.
	if points[3].Best.Gain >= points[1].Best.Gain {
		t.Fatalf("gain did not collapse with window: %v vs %v",
			points[3].Best.Gain, points[1].Best.Gain)
	}
	if _, err := GainVsWindow(cfg, 0, nil, DefaultUSumParams()); err == nil {
		t.Fatal("empty window list accepted")
	}
	if _, err := GainVsWindow(cfg, 0, []int{0}, DefaultUSumParams()); err == nil {
		t.Fatal("zero window accepted")
	}
	if _, err := GainVsWindow(cfg, 99, []int{5}, DefaultUSumParams()); err == nil {
		t.Fatal("bad target accepted")
	}
}

func TestSteadySelector(t *testing.T) {
	cfg := fig2cConfig(t)
	sel, err := NewSteadySelector(cfg, 0, 40, DefaultUSumParams())
	if err != nil {
		t.Fatal(err)
	}
	cold := newSelector(t, cfg, 0, 40)
	if sel.PAbsent() != cold.PAbsent() {
		t.Fatal("steady selector changed the prior")
	}
	for _, f := range sel.AllFlows() {
		e := sel.Evaluate(f)
		if e.Gain < 0 || e.Gain > sel.PriorEntropy()+1e-9 {
			t.Fatalf("flow %d gain %v", f, e.Gain)
		}
		var total float64
		for x := 0; x < 2; x++ {
			for q := 0; q < 2; q++ {
				total += e.Joint[x][q]
			}
		}
		if math.Abs(total-1) > 1e-6 {
			t.Fatalf("flow %d joint mass %v", f, total)
		}
	}
	// A 40-step window is past the chain's mixing time here, so the warm
	// and cold starts must nearly agree; at short windows the warm start
	// must show a strictly warmer cache.
	for _, f := range sel.AllFlows() {
		warm := sel.Evaluate(f).PHit
		coldP := cold.Evaluate(f).PHit
		if math.Abs(warm-coldP) > 0.02 {
			t.Fatalf("flow %d: steady PHit %v far from cold %v at a mixed horizon", f, warm, coldP)
		}
	}
	shortWarm, err := NewSteadySelector(cfg, 0, 1, DefaultUSumParams())
	if err != nil {
		t.Fatal(err)
	}
	shortCold := newSelector(t, cfg, 0, 1)
	if w, c := shortWarm.Evaluate(0).PHit, shortCold.Evaluate(0).PHit; w <= c {
		t.Fatalf("one-step window: steady PHit %v should exceed cold %v", w, c)
	}
	if _, err := NewSteadySelector(cfg, 99, 40, DefaultUSumParams()); err == nil {
		t.Fatal("bad target accepted")
	}
	if _, err := NewSteadySelector(cfg, 0, 0, DefaultUSumParams()); err == nil {
		t.Fatal("zero window accepted")
	}
}
