package core

import (
	"math"
	"math/bits"
	"sort"
	"sync"

	"flowrecon/internal/rules"
)

// StateEstimates are the §IV-B conditional probabilities for one compact
// state: which cached rule is evicted when a full table takes an install,
// and the probability each cached rule times out.
//
// Estimates may be shared between models via the u-sum memo (see
// usumMemo); treat the maps as immutable after estimate returns.
type StateEstimates struct {
	// Evict[j] is P(rule j has the smallest remaining time | cached),
	// Eqn (5)/Eqn (3), normalized over the cached rules. Keyed by rule ID.
	Evict map[int]float64
	// Timeout[j] is P(rule j should time out | cached), Eqn (7)/Eqn (3).
	Timeout map[int]float64
	// Exact reports whether the u-sums were enumerated exactly (true) or
	// estimated by Monte Carlo sampling (false).
	Exact bool
	// Feasible is false when no injective most-recent-match assignment u
	// exists (or all have zero probability); Evict then falls back to
	// uniform and Timeout to zero.
	Feasible bool
}

// USumParams tunes the estimator.
type USumParams struct {
	// ExactLimit is the largest assignment-grid size (Π t_j over cached
	// rules) enumerated exactly.
	ExactLimit int
	// MCSamples is the number of Monte Carlo samples used above the
	// exact limit.
	MCSamples int
	// Seed drives the Monte Carlo sampler; per-state streams are derived
	// from it deterministically.
	Seed int64
}

// DefaultUSumParams returns the defaults used by the compact model.
func DefaultUSumParams() USumParams {
	return USumParams{ExactLimit: 20000, MCSamples: 1500, Seed: 1}
}

// uEstimator evaluates the u-sums of §IV-B for states of one model
// configuration. It carries reusable scratch, so each concurrent build
// worker must own its own estimator (the underlying rule set and rates
// are shared read-only).
type uEstimator struct {
	rs       *rules.Set
	sr       []float64 // per-step flow rates λ_f·Δ
	capacity int
	params   USumParams

	// Scratch reused across estimate calls (never escapes).
	scr enumScratch
}

// estimate computes the eviction distribution and timeout probabilities
// for the compact state caching exactly cachedIDs. Results are memoized
// across estimators (and hence across the M and M₀ chains) keyed by the
// numerical inputs of the computation, so a state whose effective rates
// are unaffected by the target's zeroed rate is computed once.
func (e *uEstimator) estimate(cachedIDs []int) StateEstimates {
	m := len(cachedIDs)
	out := StateEstimates{
		Evict:    make(map[int]float64, m),
		Timeout:  make(map[int]float64, m),
		Feasible: true,
		Exact:    true,
	}
	if m == 0 {
		return out
	}

	// Order cached rules by descending priority so that, during
	// enumeration, a rule's higher-priority cached rules are the prefix.
	cached := make([]int, m)
	copy(cached, cachedIDs)
	sort.Slice(cached, func(a, b int) bool {
		return e.rs.HigherPriority(cached[a], cached[b])
	})
	touts := make([]int, m)
	for i, j := range cached {
		touts[i] = e.rs.Rule(j).Timeout
	}

	if !injectiveFeasible(touts) {
		return e.fallback(cached, out)
	}

	tab := e.buildGammaTables(cached)

	key := usumKeyOf(e, cached, touts, tab)
	if hit, ok := sharedUSumMemo.get(key); ok {
		obsMemo(true)
		return hit
	}
	obsMemo(false)

	// Decide exact enumeration vs Monte Carlo by grid size.
	grid := 1.0
	for _, t := range touts {
		grid *= float64(t)
	}
	acc := newUAccumulator(cached, touts, e)
	if grid <= float64(e.params.ExactLimit) {
		e.enumerateFast(cached, touts, tab, acc)
	} else {
		out.Exact = false
		e.sample(touts, tab, acc, cached)
	}

	if acc.z <= 0 {
		return e.fallback(cached, out)
	}
	var evictSum float64
	for i, j := range cached {
		out.Timeout[j] = clamp01(acc.timeoutNum[i] / acc.z)
		out.Evict[j] = acc.evictNum[i] / acc.z
		evictSum += out.Evict[j]
	}
	if evictSum > 0 {
		for j := range out.Evict {
			out.Evict[j] /= evictSum
		}
	} else {
		for _, j := range cached {
			out.Evict[j] = 1 / float64(m)
		}
	}
	sharedUSumMemo.put(key, out)
	return out
}

// fallback marks the state infeasible and returns uniform eviction with
// zero timeout probability.
func (e *uEstimator) fallback(cached []int, out StateEstimates) StateEstimates {
	out.Feasible = false
	for _, j := range cached {
		out.Evict[j] = 1 / float64(len(cached))
		out.Timeout[j] = 0
	}
	return out
}

// injectiveFeasible checks Hall's condition for distinct values u(j) ∈
// [1, t_j]: after sorting timeouts ascending, t_(i) ≥ i+1 must hold.
func injectiveFeasible(touts []int) bool {
	s := make([]int, len(touts))
	copy(s, touts)
	sort.Ints(s)
	for i, t := range s {
		if t < i+1 {
			return false
		}
	}
	return true
}

// gammaTables holds, for every rule j and every subset of j's
// higher-priority cached rules, the effective rate γ of Eqn (1) when
// exactly that subset is excluded (i.e. was last matched more than k steps
// ago). hp[j] lists the cached-slot indices of j's higher-priority cached
// rules; gamma[j] is indexed by a bitmask over hp[j]. logGamma caches
// log γ so the per-assignment hot loop is free of math.Log calls (entries
// with γ ≤ 0 are rejected before the log is read).
type gammaTables struct {
	hp       [][]int
	gamma    [][]float64
	logGamma [][]float64
}

func (e *uEstimator) buildGammaTables(cached []int) *gammaTables {
	nr := e.rs.Len()
	tab := &gammaTables{
		hp:       make([][]int, nr),
		gamma:    make([][]float64, nr),
		logGamma: make([][]float64, nr),
	}
	for j := 0; j < nr; j++ {
		var hp []int
		for slot, cj := range cached {
			if cj != j && e.rs.HigherPriority(cj, j) {
				hp = append(hp, slot)
			}
		}
		tab.hp[j] = hp
		g := make([]float64, 1<<uint(len(hp)))
		lg := make([]float64, len(g))
		for mask := range g {
			rel := e.rs.Rule(j).Cover.Clone()
			for b, slot := range hp {
				if mask&(1<<uint(b)) != 0 {
					rel.SubtractInPlace(e.rs.Rule(cached[slot]).Cover)
				}
			}
			g[mask] = rel.SumRates(e.sr)
			if g[mask] > 0 {
				lg[mask] = math.Log(g[mask])
			}
		}
		tab.gamma[j] = g
		tab.logGamma[j] = lg
	}
	return tab
}

// gammaAt returns γ_{ℓ,u}(j, k): rule j's effective rate at step ℓ-k given
// the assignment u over cached slots.
func (t *gammaTables) gammaAt(j, k int, u []int) float64 {
	mask := 0
	for b, slot := range t.hp[j] {
		if u[slot] > k {
			mask |= 1 << uint(b)
		}
	}
	return t.gamma[j][mask]
}

// maskAt returns the exclusion bitmask of rule j at step offset k.
func (t *gammaTables) maskAt(j, k int, u []int) int {
	mask := 0
	for b, slot := range t.hp[j] {
		if u[slot] > k {
			mask |= 1 << uint(b)
		}
	}
	return mask
}

// sumGammaRange returns Σ_{k=1..kmax} γ_{ℓ,u}(j, k). The mask {j' : u(j') >
// k} only changes at the assigned u values, so the sum is evaluated
// segment-wise: between consecutive breakpoints γ is constant.
func (t *gammaTables) sumGammaRange(j, kmax int, u []int) float64 {
	return t.sumGammaSpan(j, 0, kmax, u)
}

// sumGammaSpan returns Σ_{k=lo+1..hi} γ_{ℓ,u}(j, k), the tail form needed
// by the full-table horizon correction.
func (t *gammaTables) sumGammaSpan(j, lo, hi int, u []int) float64 {
	if lo < 0 {
		lo = 0
	}
	if hi <= lo {
		return 0
	}
	hp := t.hp[j]
	if len(hp) == 0 {
		return float64(hi-lo) * t.gamma[j][0]
	}
	sum := 0.0
	k := lo + 1
	for k <= hi {
		// Mask for the segment starting at k, and the segment's end: the
		// smallest breakpoint u(slot) > k bounds the constant stretch
		// (slot drops out of the mask at k = u(slot)).
		mask := 0
		next := hi + 1
		for b, slot := range hp {
			if u[slot] > k {
				mask |= 1 << uint(b)
				if u[slot] < next {
					next = u[slot]
				}
			}
		}
		if next > hi+1 {
			next = hi + 1
		}
		sum += float64(next-k) * t.gamma[j][mask]
		k = next
	}
	return sum
}

// uAccumulator gathers Σ P(u) (Eqn 3), Σ P(u)·1[min-remaining] (Eqn 5) and
// Σ P(u)·1[u(j)=t_j] (Eqn 7) over the enumerated or sampled assignments.
type uAccumulator struct {
	z          float64
	evictNum   []float64
	timeoutNum []float64

	cached   []int
	touts    []int
	est      *uEstimator
	uncached []int // rule IDs not cached
}

func newUAccumulator(cached, touts []int, e *uEstimator) *uAccumulator {
	acc := &uAccumulator{
		evictNum:   make([]float64, len(cached)),
		timeoutNum: make([]float64, len(cached)),
		cached:     cached,
		touts:      touts,
		est:        e,
	}
	var inCache uint32
	for _, j := range cached {
		inCache |= 1 << uint(j)
	}
	for j := 0; j < e.rs.Len(); j++ {
		if inCache&(1<<uint(j)) == 0 {
			acc.uncached = append(acc.uncached, j)
		}
	}
	return acc
}

// accumulate folds one assignment with probability p into the sums.
func (a *uAccumulator) accumulate(u []int, p float64) {
	a.z += p
	minRem := math.MaxInt32
	for i := range a.cached {
		if rem := a.touts[i] - u[i]; rem < minRem {
			minRem = rem
		}
		if u[i] == a.touts[i] {
			a.timeoutNum[i] += p
		}
	}
	for i := range a.cached {
		if a.touts[i]-u[i] == minRem {
			// Condition (4) with ties counted for every minimizer.
			a.evictNum[i] += p
		}
	}
}

// observe evaluates P(u) for a complete assignment and folds it into the
// accumulators. Used by the Monte Carlo path; the exact path accumulates
// log P(u) incrementally along the DFS instead.
func (a *uAccumulator) observe(u []int, tab *gammaTables) {
	p := a.probability(u, tab)
	if p <= 0 {
		return
	}
	a.accumulate(u, p)
}

// probability evaluates P(u) per §IV-B for one Monte Carlo sample,
// choosing the |C|<n or |C|=n form of the uncached-rule horizon. The
// cached rules' own-step factors are direct table lookups; every rule's
// Σ_k γ range term is then folded in a single sweep over the segments
// between sorted assignment values — the exclusion mask of every rule is
// constant within a segment, and the projection tables from prepSweep
// turn each per-segment mask lookup into O(1). One sample costs
// O(m log m + segments · |Rules|) instead of the per-rule segment rescans
// sumGammaSpan would pay.
// probability evaluates P(u) per §IV-B for one Monte Carlo sample,
// choosing the |C|<n or |C|=n form of the uncached-rule horizon. The
// work per sample is restructured around the tables prepSweep builds for
// the state:
//
//   - cached rules with no higher-priority cached rule ("flat") have a
//     constant rate, so their own-step and range factors are closed-form;
//   - flat uncached rules fold into one lookup of the (flatT, flatR)
//     threshold tables indexed by the full-table slack;
//   - masked uncached rules fold into two lookups per sweep segment of a
//     prefix table P[A][k] (A the set of still-pending cached slots);
//   - masked cached rules walk the sweep segments with O(1) gamma-value
//     lookups from the slot-set-indexed SoA table.
//
// One sample therefore costs O(m log m + segments·(|masked cached| + 1))
// instead of the per-rule segment rescans sumGammaSpan would pay.
func (a *uAccumulator) probability(u []int, tab *gammaTables) float64 {
	e := a.est
	s := &e.scr
	m := len(a.cached)
	// Slots in ascending assignment order bound the sweep's segments and
	// give each slot its set of still-pending peers (u strictly larger).
	// Values are packed as u<<6|slot so the insertion sort compares plain
	// ints without indirection (u is injective, so ties cannot occur).
	ov := s.order[:m]
	for i := range ov {
		ov[i] = u[i]<<6 | i
	}
	for i := 1; i < m; i++ {
		for p := i; p > 0 && ov[p] < ov[p-1]; p-- {
			ov[p], ov[p-1] = ov[p-1], ov[p]
		}
	}
	after := (1 << uint(m)) - 1
	for _, pv := range ov {
		after &^= 1 << uint(pv&63)
		s.aAfter[pv&63] = after
	}
	logp := 0.0
	sum := 0.0
	maxHi := 0
	cm := len(s.cmSlots)
	for i, j := range a.cached {
		ci := s.slotToCM[i]
		if ci < 0 {
			g := tab.gamma[j][0]
			if g <= 0 {
				return 0
			}
			logp += tab.logGamma[j][0] - g
			sum += float64(u[i]-1) * g
			continue
		}
		at := s.aAfter[i]*cm + ci
		g := s.cmGval[at]
		if g <= 0 {
			return 0
		}
		logp += tab.logGamma[j][s.cmProj[at]] - g
		h := u[i] - 1
		s.cmHi[ci] = h
		if h > maxHi {
			maxHi = h
		}
	}
	full := m >= e.capacity
	minSlack := 0
	if full {
		minSlack = math.MaxInt32
		for i := range a.cached {
			if sl := a.touts[i] - u[i]; sl < minSlack {
				minSlack = sl
			}
		}
	}
	// Flat uncached rules: closed form via the threshold tables.
	if ms := minSlack; ms < len(s.flatT) {
		sum += s.flatT[ms] - float64(ms)*s.flatR[ms]
	}
	pk := s.pStride // maxK+1 over masked uncached rules; 0 when none
	if pk > 0 {
		if h := pk - 1 - minSlack; h > maxHi {
			maxHi = h
		}
	}
	if maxHi > 0 {
		active := (1 << uint(m)) - 1
		k, bi := 1, 0
		for k <= maxHi {
			for bi < m && ov[bi]>>6 <= k {
				active &^= 1 << uint(ov[bi]&63)
				bi++
			}
			next := maxHi + 1
			if bi < m && ov[bi]>>6 < next {
				next = ov[bi] >> 6
			}
			end := next - 1
			if pk > 0 {
				// Masked uncached rules: P[A][end+ms] − P[A][k−1+ms].
				base := active * pk
				lo, hi := k-1+minSlack, end+minSlack
				if lo > pk-1 {
					lo = pk - 1
				}
				if hi > pk-1 {
					hi = pk - 1
				}
				sum += s.pTab[base+hi] - s.pTab[base+lo]
			}
			gv := s.cmGval[active*cm : active*cm+cm]
			for ci, hj := range s.cmHi {
				if hj >= k {
					e2 := end
					if hj < e2 {
						e2 = hj
					}
					sum += float64(e2-k+1) * gv[ci]
				}
			}
			k = next
		}
	}
	return math.Exp(logp - sum)
}

// enumScratch holds the reusable buffers of the incremental exact
// enumeration and the Monte Carlo sweep.
type enumScratch struct {
	u      []int
	used   []bool
	ready  [][]int // ready[d]: uncached rules computable once slots < d assigned
	dropAt [][]int // per-depth mask-drop table indexed by step offset

	// Monte Carlo sweep tables (prepSweep / probability).
	order        []int     // slot indices sorted by assigned value
	aAfter       []int     // per slot: set of slots with larger assigned value
	slotBit      []uint8   // scratch: slot → bit position in the current rule's hp
	flatT, flatR []float64 // threshold tables for flat uncached rules
	cmSlots      []int     // cached slots whose rule has a nonempty hp
	slotToCM     []int     // slot → index into cmSlots (−1 if flat)
	cmProj       []uint8   // [A][ci] gamma index of cached-masked rule ci under slot set A
	cmGval       []float64 // [A][ci] gamma value, same layout
	cmHi         []int     // per cached-masked rule: sweep horizon for this sample
	muRules      []int     // masked uncached rule IDs
	muProj       []uint8   // [A][mi] gamma index of masked uncached rule mi
	muGval       []float64 // [A][mi] gamma value, same layout
	bucket       []float64 // per-step accumulation scratch for pTab
	pTab         []float64 // [A][k] prefix sums over masked uncached rules
	pStride      int       // pTab row length (maxK+1); 0 when no masked uncached
}

// prepSweep builds the per-state tables used by the Monte Carlo
// probability sweep. Rules are split by whether any cached rule outranks
// them ("masked") or not ("flat" — their rate never depends on the
// assignment):
//
//   - flat uncached rules: threshold tables flatT[ms] = Σ_{t_j>ms} t_j·γ_j
//     and flatR[ms] = Σ_{t_j>ms} γ_j, so the horizon-(t_j−ms) range sum
//     is flatT[ms] − ms·flatR[ms] for any full-table slack ms;
//   - masked cached rules: SoA tables cmProj/cmGval indexed by
//     [pending-slot set A][rule], giving O(1) mask and gamma lookups;
//   - masked uncached rules: pTab[A][k] = Σ_{k'=1..k} Σ_{j: t_j≥k'}
//     γ_j(A), a prefix table that turns each sweep segment's contribution
//     from all masked uncached rules into a two-lookup difference.
//
// Built once per sampled state and amortized over all of its samples.
func (e *uEstimator) prepSweep(m int, tab *gammaTables, acc *uAccumulator) {
	s := &e.scr
	nSets := 1 << uint(m)
	if cap(s.order) < m {
		s.order = make([]int, m)
		s.aAfter = make([]int, m)
		s.slotToCM = make([]int, m)
	}
	s.order = s.order[:m]
	s.aAfter = s.aAfter[:m]
	s.slotToCM = s.slotToCM[:m]
	if cap(s.slotBit) < m {
		s.slotBit = make([]uint8, m)
	}
	s.slotBit = s.slotBit[:m]

	// Classify cached slots.
	s.cmSlots = s.cmSlots[:0]
	for i, j := range acc.cached {
		if len(tab.hp[j]) > 0 {
			s.slotToCM[i] = len(s.cmSlots)
			s.cmSlots = append(s.cmSlots, i)
		} else {
			s.slotToCM[i] = -1
		}
	}
	// Classify uncached rules.
	s.muRules = s.muRules[:0]
	maxTFlat, maxK := 0, 0
	for _, j := range acc.uncached {
		t := e.rs.Rule(j).Timeout
		if len(tab.hp[j]) == 0 {
			if t > maxTFlat {
				maxTFlat = t
			}
		} else {
			s.muRules = append(s.muRules, j)
			if t > maxK {
				maxK = t
			}
		}
	}

	// Flat uncached threshold tables.
	if cap(s.flatT) < maxTFlat+1 {
		s.flatT = make([]float64, maxTFlat+1)
		s.flatR = make([]float64, maxTFlat+1)
	}
	s.flatT = s.flatT[:maxTFlat+1]
	s.flatR = s.flatR[:maxTFlat+1]
	for i := range s.flatT {
		s.flatT[i], s.flatR[i] = 0, 0
	}
	for _, j := range acc.uncached {
		if len(tab.hp[j]) == 0 {
			t := e.rs.Rule(j).Timeout
			g := tab.gamma[j][0]
			for ms := 0; ms < t; ms++ {
				s.flatT[ms] += float64(t) * g
				s.flatR[ms] += g
			}
		}
	}

	// Masked cached SoA tables, built per rule by subset DP over A:
	// proj(A) = proj(A minus lowest bit) | bit of that slot in hp.
	cm := len(s.cmSlots)
	if need := nSets * cm; cap(s.cmProj) < need {
		s.cmProj = make([]uint8, need)
		s.cmGval = make([]float64, need)
	}
	s.cmProj = s.cmProj[:nSets*cm]
	s.cmGval = s.cmGval[:nSets*cm]
	if cap(s.cmHi) < cm {
		s.cmHi = make([]int, cm)
	}
	s.cmHi = s.cmHi[:cm]
	fillSoA := func(dstProj []uint8, dstGval []float64, stride, idx, j int) {
		for slot := range s.slotBit {
			s.slotBit[slot] = 0
		}
		for b, slot := range tab.hp[j] {
			s.slotBit[slot] = 1 << uint(b)
		}
		dstProj[idx] = 0
		dstGval[idx] = tab.gamma[j][0]
		for A := 1; A < nSets; A++ {
			pv := dstProj[(A&(A-1))*stride+idx] | s.slotBit[bits.TrailingZeros32(uint32(A))]
			dstProj[A*stride+idx] = pv
			dstGval[A*stride+idx] = tab.gamma[j][pv]
		}
	}
	for ci, i := range s.cmSlots {
		fillSoA(s.cmProj, s.cmGval, cm, ci, acc.cached[i])
	}

	// Masked uncached prefix tables.
	mu := len(s.muRules)
	if mu == 0 {
		s.pStride = 0
		return
	}
	s.pStride = maxK + 1
	if need := nSets * mu; cap(s.muGval) < need {
		s.muGval = make([]float64, need)
	}
	s.muGval = s.muGval[:nSets*mu]
	if need := nSets * mu; cap(s.muProj) < need {
		s.muProj = make([]uint8, need)
	}
	s.muProj = s.muProj[:nSets*mu]
	for mi, j := range s.muRules {
		fillSoA(s.muProj, s.muGval, mu, mi, j)
	}
	if cap(s.bucket) < maxK+1 {
		s.bucket = make([]float64, maxK+1)
	}
	s.bucket = s.bucket[:maxK+1]
	if need := nSets * s.pStride; cap(s.pTab) < need {
		s.pTab = make([]float64, need)
	}
	s.pTab = s.pTab[:nSets*s.pStride]
	for A := 0; A < nSets; A++ {
		for k := range s.bucket {
			s.bucket[k] = 0
		}
		for mi, j := range s.muRules {
			s.bucket[e.rs.Rule(j).Timeout] += s.muGval[A*mu+mi]
		}
		// H[k] = Σ_{t_j ≥ k} γ_j(A) by suffix accumulation, then prefix
		// sums P[k] = Σ_{k'≤k} H[k'] in place.
		base := A * s.pStride
		suf := 0.0
		for k := maxK; k >= 1; k-- {
			suf += s.bucket[k]
			s.pTab[base+k] = suf
		}
		s.pTab[base] = 0
		for k := 1; k <= maxK; k++ {
			s.pTab[base+k] += s.pTab[base+k-1]
		}
	}
}

// enumerateFast walks every injective assignment u over the cached slots,
// accumulating log P(u) incrementally along the DFS:
//
//   - cached rule at slot i contributes log γ − γ − Σ_{k<u(i)} γ(k), all of
//     which depend only on u(0..i) because the higher-priority cached
//     rules of slot i are a prefix of the slot order; the prefix sum and
//     exclusion mask are maintained in O(1) amortized per candidate value
//     instead of a fresh O(|hp|·segments) walk per leaf.
//   - uncached rules contribute −Σ_{k≤horizon} γ(k) as soon as their last
//     higher-priority cached slot is assigned; under a full table the
//     horizon shrinks by the leaf-dependent minimum slack, applied as a
//     tail correction at the leaf.
func (e *uEstimator) enumerateFast(cached, touts []int, tab *gammaTables, acc *uAccumulator) {
	m := len(cached)
	maxT := 0
	for _, t := range touts {
		if t > maxT {
			maxT = t
		}
	}
	s := &e.scr
	if cap(s.u) < m {
		s.u = make([]int, m)
	}
	s.u = s.u[:m]
	if cap(s.used) < maxT+2 {
		s.used = make([]bool, maxT+2)
	}
	s.used = s.used[:maxT+2]
	for i := range s.used {
		s.used[i] = false
	}
	if cap(s.ready) < m+1 {
		s.ready = make([][]int, m+1)
	}
	s.ready = s.ready[:m+1]
	for d := range s.ready {
		s.ready[d] = s.ready[d][:0]
	}
	if cap(s.dropAt) < m {
		s.dropAt = make([][]int, m)
	}
	s.dropAt = s.dropAt[:m]
	for d := range s.dropAt {
		if cap(s.dropAt[d]) < maxT+2 {
			s.dropAt[d] = make([]int, maxT+2)
		}
		s.dropAt[d] = s.dropAt[d][:maxT+2]
	}
	// Group uncached rules by the depth at which all their
	// higher-priority cached slots are assigned.
	for _, j := range acc.uncached {
		d := 0
		for _, slot := range tab.hp[j] {
			if slot+1 > d {
				d = slot + 1
			}
		}
		s.ready[d] = append(s.ready[d], j)
	}
	full := m >= e.capacity
	e.dfs(0, 0, cached, touts, tab, acc, full)
}

func (e *uEstimator) dfs(slot int, logp float64, cached, touts []int, tab *gammaTables, acc *uAccumulator, full bool) {
	s := &e.scr
	// Fold in the uncached rules whose dependencies are now assigned,
	// over their full (table-not-full) horizon.
	for _, j := range s.ready[slot] {
		logp -= tab.sumGammaRange(j, e.rs.Rule(j).Timeout, s.u)
	}
	m := len(cached)
	if slot == m {
		e.leaf(logp, touts, tab, acc, full)
		return
	}
	js := cached[slot]
	t := touts[slot]
	hp := tab.hp[js]
	// dropAt[v] is the mask of hp bits whose assigned u equals v: the
	// bit leaves the exclusion mask when the step offset reaches it.
	drop := s.dropAt[slot]
	for v := 0; v <= t; v++ {
		drop[v] = 0
	}
	mask := 0
	for b, sl := range hp {
		mask |= 1 << uint(b)
		if ub := s.u[sl]; ub <= t {
			drop[ub] |= 1 << uint(b)
		}
	}
	sumPrefix := 0.0 // Σ_{k=1..v-1} γ(js, k)
	gamma, logGamma := tab.gamma[js], tab.logGamma[js]
	for v := 1; v <= t; v++ {
		mask &^= drop[v]
		g := gamma[mask]
		if !s.used[v] && g > 0 {
			s.u[slot] = v
			s.used[v] = true
			e.dfs(slot+1, logp+logGamma[mask]-g-sumPrefix, cached, touts, tab, acc, full)
			s.used[v] = false
		}
		sumPrefix += g
	}
}

// leaf applies the full-table horizon correction and accumulates.
func (e *uEstimator) leaf(logp float64, touts []int, tab *gammaTables, acc *uAccumulator, full bool) {
	u := e.scr.u
	if full {
		minSlack := math.MaxInt32
		for i := range u {
			if s := touts[i] - u[i]; s < minSlack {
				minSlack = s
			}
		}
		if minSlack > 0 {
			// The pre-folded horizon was t_j; the full-table horizon is
			// t_j − minSlack, so add back the tail Σ_{k>t_j−minSlack} γ.
			for _, j := range acc.uncached {
				t := e.rs.Rule(j).Timeout
				logp += tab.sumGammaSpan(j, t-minSlack, t, u)
			}
		}
	}
	p := math.Exp(logp)
	if p <= 0 {
		return
	}
	acc.accumulate(u, p)
}

// sample draws MCSamples injective assignments uniformly (via rejection)
// and feeds them to the accumulator. Uniform sampling over the same grid
// the exact sum ranges over makes every accumulated ratio a consistent
// estimator of the corresponding ratio of sums. The stream is a cheap
// splitmix-style generator seeded deterministically from the state
// content, so results are independent of evaluation order (and hence of
// build parallelism).
func (e *uEstimator) sample(touts []int, tab *gammaTables, acc *uAccumulator, cached []int) {
	seed := e.params.Seed
	for _, j := range cached {
		seed = seed*1000003 + int64(j)*7919 + int64(e.rs.Rule(j).Timeout)
	}
	rng := splitmix{s: uint64(seed)}
	e.prepSweep(len(touts), tab, acc)
	u := e.scr.u
	if cap(u) < len(touts) {
		u = make([]int, len(touts))
	}
	u = u[:len(touts)]
	for s := 0; s < e.params.MCSamples; s++ {
		if !sampleInjective(&rng, touts, u) {
			continue
		}
		acc.observe(u, tab)
	}
}

// splitmix is a tiny deterministic PRNG (SplitMix64 finalizer) for the
// Monte Carlo path: seeding costs one word instead of the 607-word
// lagged-Fibonacci initialization a math/rand source pays per state.
type splitmix struct{ s uint64 }

func (r *splitmix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// intn returns a value in [0, n) by fixed-point reduction (one multiply,
// no division). The bias is ≤ n/2⁶⁴, far below the Monte Carlo noise
// floor for the timeout-sized n used here.
func (r *splitmix) intn(n int) int {
	hi, _ := bits.Mul64(r.next(), uint64(n))
	return int(hi)
}

// sampleInjective fills u with distinct uniform values u[i] ∈ [1, touts[i]],
// retrying on collisions. It reports success.
func sampleInjective(rng *splitmix, touts []int, u []int) bool {
	const maxAttempts = 64
	// Timeouts below 64 steps (the common case) use a one-word occupancy
	// bitmask for the distinctness check; larger grids fall back to the
	// quadratic scan. Either way the accepted tuples are uniform over the
	// injective grid — rejection discards whole draws only.
	small := true
	for _, t := range touts {
		if t > 63 {
			small = false
			break
		}
	}
	if small {
		for attempt := 0; attempt < maxAttempts; attempt++ {
			var seen uint64
			ok := true
			for i, t := range touts {
				v := 1 + rng.intn(t)
				if seen&(1<<uint(v)) != 0 {
					ok = false
					break
				}
				seen |= 1 << uint(v)
				u[i] = v
			}
			if ok {
				return true
			}
		}
		return false
	}
	for attempt := 0; attempt < maxAttempts; attempt++ {
		ok := true
		for i, t := range touts {
			u[i] = 1 + rng.intn(t)
		}
		for i := 0; i < len(u) && ok; i++ {
			for k := i + 1; k < len(u); k++ {
				if u[i] == u[k] {
					ok = false
					break
				}
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// ---- u-sum memoization -------------------------------------------------

// usumKey is a 128-bit hash over every numerical input of estimate: the
// cached slot order (rule IDs and timeouts), the uncached rules and their
// timeouts, the full-table flag, the estimator parameters, and the raw
// bits of every γ table entry. Two states with equal keys are guaranteed
// (up to hash collision) to produce identical estimates, which is what
// lets the M and M₀ chains share work: zeroing the target's rate leaves
// most states' effective rates untouched.
type usumKey struct{ h1, h2 uint64 }

type keyHasher struct{ h1, h2 uint64 }

func newKeyHasher() keyHasher {
	return keyHasher{h1: 1469598103934665603, h2: 0x9e3779b97f4a7c15}
}

func (h *keyHasher) word(v uint64) {
	h.h1 = (h.h1 ^ v) * 1099511628211
	h.h2 = (h.h2^(v>>32|v<<32))*0x9E3779B185EBCA87 ^ (h.h2 >> 29)
}

func usumKeyOf(e *uEstimator, cached, touts []int, tab *gammaTables) usumKey {
	h := newKeyHasher()
	h.word(uint64(len(cached)))
	full := uint64(0)
	if len(cached) >= e.capacity {
		full = 1
	}
	h.word(full)
	h.word(uint64(e.params.ExactLimit))
	h.word(uint64(e.params.MCSamples))
	h.word(uint64(e.params.Seed))
	for i, j := range cached {
		h.word(uint64(j)<<16 | uint64(touts[i]))
	}
	for j := 0; j < e.rs.Len(); j++ {
		h.word(uint64(j)<<16 | uint64(e.rs.Rule(j).Timeout))
		for _, slot := range tab.hp[j] {
			h.word(uint64(slot) + 0xabcd)
		}
		for _, g := range tab.gamma[j] {
			h.word(math.Float64bits(g))
		}
	}
	return usumKey{h.h1, h.h2}
}

// usumMemo is the process-wide bounded memo of u-sum estimates. On
// overflow the memo resets wholesale — the working set of one model pair
// fits comfortably, so eviction sophistication buys nothing.
type usumMemo struct {
	mu sync.RWMutex
	m  map[usumKey]StateEstimates
}

const usumMemoMax = 1 << 15

var sharedUSumMemo = &usumMemo{m: make(map[usumKey]StateEstimates)}

func (c *usumMemo) get(k usumKey) (StateEstimates, bool) {
	c.mu.RLock()
	v, ok := c.m[k]
	c.mu.RUnlock()
	return v, ok
}

func (c *usumMemo) put(k usumKey, v StateEstimates) {
	c.mu.Lock()
	if len(c.m) >= usumMemoMax {
		c.m = make(map[usumKey]StateEstimates, usumMemoMax/4)
	}
	c.m[k] = v
	c.mu.Unlock()
}

// ResetUSumMemo empties the process-wide u-sum memo. Benchmarks call it
// to measure cold builds; production code never needs to.
func ResetUSumMemo() {
	sharedUSumMemo.mu.Lock()
	sharedUSumMemo.m = make(map[usumKey]StateEstimates)
	sharedUSumMemo.mu.Unlock()
}

// USumMemoLen reports the number of memoized estimates (diagnostics).
func USumMemoLen() int {
	sharedUSumMemo.mu.RLock()
	defer sharedUSumMemo.mu.RUnlock()
	return len(sharedUSumMemo.m)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// clampExp is math.Exp with its argument assumed ≤ 0 (probability decay).
func clampExp(x float64) float64 {
	if x > 0 {
		x = 0
	}
	return math.Exp(x)
}
