package core

import (
	"math"
	"sort"

	"flowrecon/internal/rules"
	"flowrecon/internal/stats"
)

// StateEstimates are the §IV-B conditional probabilities for one compact
// state: which cached rule is evicted when a full table takes an install,
// and the probability each cached rule times out.
type StateEstimates struct {
	// Evict[j] is P(rule j has the smallest remaining time | cached),
	// Eqn (5)/Eqn (3), normalized over the cached rules. Keyed by rule ID.
	Evict map[int]float64
	// Timeout[j] is P(rule j should time out | cached), Eqn (7)/Eqn (3).
	Timeout map[int]float64
	// Exact reports whether the u-sums were enumerated exactly (true) or
	// estimated by Monte Carlo sampling (false).
	Exact bool
	// Feasible is false when no injective most-recent-match assignment u
	// exists (or all have zero probability); Evict then falls back to
	// uniform and Timeout to zero.
	Feasible bool
}

// USumParams tunes the estimator.
type USumParams struct {
	// ExactLimit is the largest assignment-grid size (Π t_j over cached
	// rules) enumerated exactly.
	ExactLimit int
	// MCSamples is the number of Monte Carlo samples used above the
	// exact limit.
	MCSamples int
	// Seed drives the Monte Carlo sampler; per-state streams are derived
	// from it deterministically.
	Seed int64
}

// DefaultUSumParams returns the defaults used by the compact model.
func DefaultUSumParams() USumParams {
	return USumParams{ExactLimit: 20000, MCSamples: 1500, Seed: 1}
}

// uEstimator evaluates the u-sums of §IV-B for states of one model
// configuration.
type uEstimator struct {
	rs       *rules.Set
	sr       []float64 // per-step flow rates λ_f·Δ
	capacity int
	params   USumParams
}

// estimate computes the eviction distribution and timeout probabilities
// for the compact state caching exactly cachedIDs.
func (e *uEstimator) estimate(cachedIDs []int) StateEstimates {
	m := len(cachedIDs)
	out := StateEstimates{
		Evict:    make(map[int]float64, m),
		Timeout:  make(map[int]float64, m),
		Feasible: true,
		Exact:    true,
	}
	if m == 0 {
		return out
	}

	// Order cached rules by descending priority so that, during
	// enumeration, a rule's higher-priority cached rules are the prefix.
	cached := make([]int, m)
	copy(cached, cachedIDs)
	sort.Slice(cached, func(a, b int) bool {
		return e.rs.HigherPriority(cached[a], cached[b])
	})
	touts := make([]int, m)
	for i, j := range cached {
		touts[i] = e.rs.Rule(j).Timeout
	}

	if !injectiveFeasible(touts) {
		return e.fallback(cached, out)
	}

	tab := e.buildGammaTables(cached)

	// Decide exact enumeration vs Monte Carlo by grid size.
	grid := 1.0
	for _, t := range touts {
		grid *= float64(t)
	}
	acc := newUAccumulator(cached, touts, e)
	if grid <= float64(e.params.ExactLimit) {
		u := make([]int, m)
		used := make(map[int]bool, m)
		e.enumerate(0, u, used, touts, tab, acc)
	} else {
		out.Exact = false
		e.sample(touts, tab, acc, cached)
	}

	if acc.z <= 0 {
		return e.fallback(cached, out)
	}
	var evictSum float64
	for i, j := range cached {
		out.Timeout[j] = clamp01(acc.timeoutNum[i] / acc.z)
		out.Evict[j] = acc.evictNum[i] / acc.z
		evictSum += out.Evict[j]
	}
	if evictSum > 0 {
		for j := range out.Evict {
			out.Evict[j] /= evictSum
		}
	} else {
		for _, j := range cached {
			out.Evict[j] = 1 / float64(m)
		}
	}
	return out
}

// fallback marks the state infeasible and returns uniform eviction with
// zero timeout probability.
func (e *uEstimator) fallback(cached []int, out StateEstimates) StateEstimates {
	out.Feasible = false
	for _, j := range cached {
		out.Evict[j] = 1 / float64(len(cached))
		out.Timeout[j] = 0
	}
	return out
}

// injectiveFeasible checks Hall's condition for distinct values u(j) ∈
// [1, t_j]: after sorting timeouts ascending, t_(i) ≥ i+1 must hold.
func injectiveFeasible(touts []int) bool {
	s := make([]int, len(touts))
	copy(s, touts)
	sort.Ints(s)
	for i, t := range s {
		if t < i+1 {
			return false
		}
	}
	return true
}

// gammaTables holds, for every rule j and every subset of j's
// higher-priority cached rules, the effective rate γ of Eqn (1) when
// exactly that subset is excluded (i.e. was last matched more than k steps
// ago). hp[j] lists the cached-slot indices of j's higher-priority cached
// rules; gamma[j] is indexed by a bitmask over hp[j].
type gammaTables struct {
	hp    [][]int
	gamma [][]float64
}

func (e *uEstimator) buildGammaTables(cached []int) *gammaTables {
	nr := e.rs.Len()
	tab := &gammaTables{hp: make([][]int, nr), gamma: make([][]float64, nr)}
	for j := 0; j < nr; j++ {
		var hp []int
		for slot, cj := range cached {
			if cj != j && e.rs.HigherPriority(cj, j) {
				hp = append(hp, slot)
			}
		}
		tab.hp[j] = hp
		g := make([]float64, 1<<uint(len(hp)))
		for mask := range g {
			rel := e.rs.Rule(j).Cover.Clone()
			for b, slot := range hp {
				if mask&(1<<uint(b)) != 0 {
					rel.SubtractInPlace(e.rs.Rule(cached[slot]).Cover)
				}
			}
			g[mask] = rel.SumRates(e.sr)
		}
		tab.gamma[j] = g
	}
	return tab
}

// gammaAt returns γ_{ℓ,u}(j, k): rule j's effective rate at step ℓ-k given
// the assignment u over cached slots.
func (t *gammaTables) gammaAt(j, k int, u []int) float64 {
	mask := 0
	for b, slot := range t.hp[j] {
		if u[slot] > k {
			mask |= 1 << uint(b)
		}
	}
	return t.gamma[j][mask]
}

// sumGammaRange returns Σ_{k=1..kmax} γ_{ℓ,u}(j, k). The mask {j' : u(j') >
// k} only changes at the assigned u values, so the sum is evaluated
// segment-wise: between consecutive breakpoints γ is constant.
func (t *gammaTables) sumGammaRange(j, kmax int, u []int) float64 {
	if kmax <= 0 {
		return 0
	}
	hp := t.hp[j]
	if len(hp) == 0 {
		return float64(kmax) * t.gamma[j][0]
	}
	sum := 0.0
	k := 1
	for k <= kmax {
		// Mask for the segment starting at k, and the segment's end: the
		// smallest breakpoint u(slot) > k bounds the constant stretch
		// (slot drops out of the mask at k = u(slot)).
		mask := 0
		next := kmax + 1
		for b, slot := range hp {
			if u[slot] > k {
				mask |= 1 << uint(b)
				if u[slot] < next {
					next = u[slot]
				}
			}
		}
		if next > kmax+1 {
			next = kmax + 1
		}
		sum += float64(next-k) * t.gamma[j][mask]
		k = next
	}
	return sum
}

// uAccumulator gathers Σ P(u) (Eqn 3), Σ P(u)·1[min-remaining] (Eqn 5) and
// Σ P(u)·1[u(j)=t_j] (Eqn 7) over the enumerated or sampled assignments.
type uAccumulator struct {
	z          float64
	evictNum   []float64
	timeoutNum []float64

	cached   []int
	touts    []int
	est      *uEstimator
	uncached []int // rule IDs not cached
}

func newUAccumulator(cached, touts []int, e *uEstimator) *uAccumulator {
	acc := &uAccumulator{
		evictNum:   make([]float64, len(cached)),
		timeoutNum: make([]float64, len(cached)),
		cached:     cached,
		touts:      touts,
		est:        e,
	}
	inCache := make(map[int]bool, len(cached))
	for _, j := range cached {
		inCache[j] = true
	}
	for j := 0; j < e.rs.Len(); j++ {
		if !inCache[j] {
			acc.uncached = append(acc.uncached, j)
		}
	}
	return acc
}

// observe evaluates P(u) for a complete assignment and folds it into the
// accumulators.
func (a *uAccumulator) observe(u []int, tab *gammaTables) {
	p := a.probability(u, tab)
	if p <= 0 {
		return
	}
	a.z += p
	minRem := math.MaxInt32
	for i := range a.cached {
		if rem := a.touts[i] - u[i]; rem < minRem {
			minRem = rem
		}
		if u[i] == a.touts[i] {
			a.timeoutNum[i] += p
		}
	}
	for i := range a.cached {
		if a.touts[i]-u[i] == minRem {
			// Condition (4) with ties counted for every minimizer.
			a.evictNum[i] += p
		}
	}
}

// probability evaluates P(u) per §IV-B, choosing the |C|<n or |C|=n form
// of the uncached-rule horizon. The product is accumulated in log space so
// the hot loop is additions with a single final exp.
func (a *uAccumulator) probability(u []int, tab *gammaTables) float64 {
	logp := 0.0
	for i, j := range a.cached {
		g := tab.gammaAt(j, u[i], u)
		if g <= 0 {
			return 0
		}
		logp += math.Log(g) - g
		logp -= tab.sumGammaRange(j, u[i]-1, u)
	}
	full := len(a.cached) >= a.est.capacity
	minSlack := 0
	if full {
		minSlack = math.MaxInt32
		for i := range a.cached {
			if s := a.touts[i] - u[i]; s < minSlack {
				minSlack = s
			}
		}
	}
	for _, j := range a.uncached {
		horizon := a.est.rs.Rule(j).Timeout
		if full {
			horizon -= minSlack // u_max(j) = t_j - min(t_j' - u(j'))
		}
		logp -= tab.sumGammaRange(j, horizon, u)
	}
	return math.Exp(logp)
}

// enumerate walks every injective assignment u over the cached slots.
func (e *uEstimator) enumerate(slot int, u []int, used map[int]bool, touts []int, tab *gammaTables, acc *uAccumulator) {
	if slot == len(u) {
		acc.observe(u, tab)
		return
	}
	for v := 1; v <= touts[slot]; v++ {
		if used[v] {
			continue
		}
		u[slot] = v
		used[v] = true
		e.enumerate(slot+1, u, used, touts, tab, acc)
		used[v] = false
	}
}

// sample draws MCSamples injective assignments uniformly (via rejection)
// and feeds them to the accumulator. Uniform sampling over the same grid
// the exact sum ranges over makes every accumulated ratio a consistent
// estimator of the corresponding ratio of sums.
func (e *uEstimator) sample(touts []int, tab *gammaTables, acc *uAccumulator, cached []int) {
	seed := e.params.Seed
	for _, j := range cached {
		seed = seed*1000003 + int64(j)*7919 + int64(e.rs.Rule(j).Timeout)
	}
	rng := stats.NewRNG(seed)
	u := make([]int, len(touts))
	for s := 0; s < e.params.MCSamples; s++ {
		if !sampleInjective(rng, touts, u) {
			continue
		}
		acc.observe(u, tab)
	}
}

// sampleInjective fills u with distinct uniform values u[i] ∈ [1, touts[i]],
// retrying on collisions. It reports success.
func sampleInjective(rng *stats.RNG, touts []int, u []int) bool {
	const maxAttempts = 64
	for attempt := 0; attempt < maxAttempts; attempt++ {
		ok := true
		for i, t := range touts {
			u[i] = 1 + rng.Intn(t)
		}
		for i := 0; i < len(u) && ok; i++ {
			for k := i + 1; k < len(u); k++ {
				if u[i] == u[k] {
					ok = false
					break
				}
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// clampExp is math.Exp with its argument assumed ≤ 0 (probability decay).
func clampExp(x float64) float64 {
	if x > 0 {
		x = 0
	}
	return math.Exp(x)
}
