// Package core implements the paper's primary contribution: Markov models
// of an SDN switch rule cache (Section IV) and the information-gain probe
// selection built on them (Section V).
//
// Two models are provided, mirroring the paper:
//
//   - BasicModel (§IV-A): exact. A state is the ordered cache contents with
//     per-rule remaining timeouts. Faithful but exponential in rules and
//     timeouts (see BasicStateCount).
//
//   - CompactModel (§IV-B): approximate. A state is the subset of rules
//     presently cached; eviction and timeout probabilities are estimated by
//     summing over most-recent-match sequences (the u functions).
//
// On top of either model, ProbeSelector (probe.go, multiprobe.go) computes
// the information gain of candidate probe flows about the indicator
// X̂ = "target flow occurred within the last T steps" and selects optimal
// probes; attacker.go packages the paper's four attacker behaviours.
package core

import (
	"fmt"
	"math"

	"flowrecon/internal/flows"
	"flowrecon/internal/rules"
)

// Config are the model inputs the paper grants the attacker (§III-C): the
// rule set, per-flow Poisson rates, the switch cache size, and the model
// step Δ.
type Config struct {
	// Rules is the controller's policy.
	Rules *rules.Set
	// Rates[f] is the Poisson rate λ_f of flow f in arrivals per second.
	// Its length defines the flow universe.
	Rates []float64
	// Delta is the model step duration Δ in seconds. Per §IV-A it should
	// be small enough that two arrivals within one step are improbable.
	Delta float64
	// CacheSize is the switch flow-table capacity n.
	CacheSize int
}

// Validate checks the configuration for structural errors.
func (c Config) Validate() error {
	if c.Rules == nil || c.Rules.Len() == 0 {
		return fmt.Errorf("core: empty rule set")
	}
	if len(c.Rates) == 0 {
		return fmt.Errorf("core: empty rate vector")
	}
	if c.Delta <= 0 {
		return fmt.Errorf("core: Δ = %v ≤ 0", c.Delta)
	}
	if c.CacheSize < 1 {
		return fmt.Errorf("core: cache size %d < 1", c.CacheSize)
	}
	for f, r := range c.Rates {
		if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return fmt.Errorf("core: bad rate %v for flow %d", r, f)
		}
	}
	nf := len(c.Rates)
	for _, r := range c.Rules.Rules() {
		var bad bool
		r.Cover.ForEach(func(f flows.ID) {
			if int(f) >= nf {
				bad = true
			}
		})
		if bad {
			return fmt.Errorf("core: %s covers flows outside the %d-flow universe", r, nf)
		}
	}
	return nil
}

// stepRates returns λ_f·Δ per flow — the per-step arrival rates, zeroing
// flows not covered by any rule (they cannot change the cache, so their
// arrivals fold into the null event; see DESIGN.md).
func (c Config) stepRates() []float64 {
	covered := c.Rules.CoveredFlows()
	out := make([]float64, len(c.Rates))
	for f := range out {
		if covered.Contains(flows.ID(f)) {
			out[f] = c.Rates[f] * c.Delta
		}
	}
	return out
}

// withoutFlow returns a copy of the config in which flow f's rate is zero —
// the chain conditioned on the target flow never occurring (§V-A).
func (c Config) withoutFlow(f flows.ID) Config {
	out := c
	out.Rates = make([]float64, len(c.Rates))
	copy(out.Rates, c.Rates)
	out.Rates[f] = 0
	return out
}

// relevantFlows implements the two-case "relevant flow identifiers"
// definition of §IV-A1 for rule j given the cached-rule predicate:
//
//   - j cached:   rule_j \ ∪ {rule_j' cached, rule_j' > rule_j}
//   - j uncached: rule_j \ (∪ cached rules ∪ {rule_j' uncached, rule_j' > rule_j})
func relevantFlows(rs *rules.Set, cached func(int) bool, j int) flows.Set {
	rel := rs.Rule(j).Cover.Clone()
	if cached(j) {
		for j2 := 0; j2 < rs.Len(); j2++ {
			if j2 != j && cached(j2) && rs.HigherPriority(j2, j) {
				rel.SubtractInPlace(rs.Rule(j2).Cover)
			}
		}
		return rel
	}
	for j2 := 0; j2 < rs.Len(); j2++ {
		if j2 == j {
			continue
		}
		if cached(j2) || rs.HigherPriority(j2, j) {
			rel.SubtractInPlace(rs.Rule(j2).Cover)
		}
	}
	return rel
}

// eventWeights holds the unnormalized transition weights out of a cache
// state (identified only by which rules are cached): one arrival event per
// rule plus the null event, per §IV-A1.
type eventWeights struct {
	// arrival[j] is (γ_j·e^{-γ_j})·e^{-Γ_j}; zero when rule j has no
	// relevant flows in this state.
	arrival []float64
	// relRate[j] is γ_j, the effective per-step rate of rule j.
	relRate []float64
	// relFlows[j] is the relevant flow set of rule j.
	relFlows []flows.Set
	// null is e^{-Λ}, the weight of no (covered) flow arriving.
	null float64
}

// computeEventWeights evaluates the §IV-A1 arrival/null weights for the
// state described by cached, using per-step rates sr.
func computeEventWeights(rs *rules.Set, sr []float64, cached func(int) bool) eventWeights {
	var total float64
	for _, r := range sr {
		total += r
	}
	w := eventWeights{
		arrival:  make([]float64, rs.Len()),
		relRate:  make([]float64, rs.Len()),
		relFlows: make([]flows.Set, rs.Len()),
		null:     math.Exp(-total),
	}
	for j := 0; j < rs.Len(); j++ {
		rel := relevantFlows(rs, cached, j)
		w.relFlows[j] = rel
		gamma := rel.SumRates(sr)
		w.relRate[j] = gamma
		if gamma <= 0 {
			continue
		}
		bigGamma := total - gamma
		w.arrival[j] = gamma * math.Exp(-gamma) * math.Exp(-bigGamma)
	}
	return w
}
