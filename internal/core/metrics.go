package core

import (
	"sync/atomic"

	"flowrecon/internal/telemetry"
)

// coreMetrics bundles the instruments the model layer reports into.
// Instrumentation is opt-in via SetTelemetry; the nil default costs one
// atomic pointer load per observation site.
type coreMetrics struct {
	// buildMs is the wall time of one compact-model build (histogram
	// "model_build_ms").
	buildMs *telemetry.Histogram
	// evolveNs is the wall time of one Evolve call (histogram
	// "evolve_ns").
	evolveNs *telemetry.Histogram
	// modelCacheHits/Misses count ModelCache lookups.
	modelCacheHits   *telemetry.Counter
	modelCacheMisses *telemetry.Counter
	// usumMemoHits/Misses count u-sum memo lookups.
	usumMemoHits   *telemetry.Counter
	usumMemoMisses *telemetry.Counter
	// buildWorkers is the worker count of the most recent parallel
	// model build (gauge "model_build_workers").
	buildWorkers *telemetry.Gauge
	// events receives one wide event per model-cache lookup (kind
	// "model.cache"); thin with EventLog.SetSampling on hot runs.
	events *telemetry.EventLog
}

var coreMetricsPtr atomic.Pointer[coreMetrics]

// evolveNsBuckets spans sub-microsecond sparse steps through multi-second
// dense evolutions.
func evolveNsBuckets() []float64 {
	return []float64{
		1e3, 5e3, 1e4, 5e4, 1e5, 5e5, 1e6, 5e6, 1e7, 5e7, 1e8, 5e8, 1e9,
	}
}

// SetTelemetry points the model layer's instrumentation at reg: the
// model_build_ms and evolve_ns histograms, model-cache and u-sum memo
// hit counters, and the model_build_workers gauge all land in reg's
// /debug/vars-style snapshot. Passing nil disables instrumentation
// (the default).
func SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		coreMetricsPtr.Store(nil)
		return
	}
	coreMetricsPtr.Store(&coreMetrics{
		buildMs:          reg.Histogram("model_build_ms", telemetry.MillisecondBuckets()),
		evolveNs:         reg.Histogram("evolve_ns", evolveNsBuckets()),
		modelCacheHits:   reg.Counter("model_cache_lookups", "result", "hit"),
		modelCacheMisses: reg.Counter("model_cache_lookups", "result", "miss"),
		usumMemoHits:     reg.Counter("usum_memo_lookups", "result", "hit"),
		usumMemoMisses:   reg.Counter("usum_memo_lookups", "result", "miss"),
		buildWorkers:     reg.Gauge("model_build_workers"),
		events:           reg.Events(),
	})
}

func obsMemo(hit bool) {
	m := coreMetricsPtr.Load()
	if m == nil {
		return
	}
	if hit {
		m.usumMemoHits.Inc()
	} else {
		m.usumMemoMisses.Inc()
	}
}

func obsModelCache(hit bool) {
	m := coreMetricsPtr.Load()
	if m == nil {
		return
	}
	if hit {
		m.modelCacheHits.Inc()
	} else {
		m.modelCacheMisses.Inc()
	}
	if m.events != nil {
		ev := telemetry.NewWideEvent("model.cache")
		ev.Node = "core"
		if hit {
			ev.Outcome = "hit"
		} else {
			ev.Outcome = "miss"
		}
		m.events.Emit(ev)
	}
}

func obsBuild(ms float64, workers int) {
	m := coreMetricsPtr.Load()
	if m == nil {
		return
	}
	m.buildMs.Observe(ms)
	m.buildWorkers.Set(int64(workers))
}

func obsEvolve(ns float64) {
	m := coreMetricsPtr.Load()
	if m == nil {
		return
	}
	m.evolveNs.Observe(ns)
}

// evolveInstrumented reports whether Evolve timing is being collected,
// letting hot paths skip the clock reads entirely when it is not.
func evolveInstrumented() bool {
	m := coreMetricsPtr.Load()
	return m != nil
}
