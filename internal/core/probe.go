package core

import (
	"fmt"
	"math"
	"sync"

	"flowrecon/internal/flows"
	"flowrecon/internal/markov"
	"flowrecon/internal/stats"
)

// ProbeSelector implements the probe-selection procedure of Section V. It
// holds the switch-state distribution at attack time T under two chains:
// the unconditional chain and the chain conditioned on the target flow
// never occurring (λ_f̂ = 0), from which all joint probabilities
// P(X̂ = x ∧ Q_f = q) follow.
type ProbeSelector struct {
	model   Model
	model0  Model // chain with the target's rate zeroed
	target  flows.ID
	steps   int
	pAbsent float64 // P(X̂ = 0) = e^{-λ_f̂·T·Δ}

	dist  markov.Dist // state distribution at T, unconditional
	dist0 markov.Dist // state distribution at T given X̂ = 0

	// seqPool recycles EvaluateSequence scratch arenas (see multiprobe.go).
	seqPool sync.Pool
}

// NewProbeSelector evolves both chains T steps from the empty cache and
// returns a selector for inferring whether target occurred within those T
// steps.
func NewProbeSelector(model, model0 Model, target flows.ID, steps int) (*ProbeSelector, error) {
	cfg := model.ModelConfig()
	if int(target) >= len(cfg.Rates) {
		return nil, fmt.Errorf("core: target flow %d outside universe", target)
	}
	if steps < 1 {
		return nil, fmt.Errorf("core: probe window %d steps < 1", steps)
	}
	s := &ProbeSelector{
		model:   model,
		model0:  model0,
		target:  target,
		steps:   steps,
		pAbsent: math.Exp(-cfg.Rates[target] * cfg.Delta * float64(steps)),
	}
	s.dist = evolveFresh(model, model.InitialDist(), steps)
	s.dist0 = evolveFresh(model0, model0.InitialDist(), steps)
	return s, nil
}

// MemBytes estimates the selector's resident footprint: both evolved
// distributions plus both chains' models (when compact). The models may
// be shared through the process model cache, so summing MemBytes across
// selectors can double-count shared chains.
func (s *ProbeSelector) MemBytes() int64 {
	b := int64(len(s.dist)+len(s.dist0)) * 8
	if m, ok := s.model.(*CompactModel); ok {
		b += m.MemBytes()
	}
	if m, ok := s.model0.(*CompactModel); ok {
		b += m.MemBytes()
	}
	return b
}

// inPlaceEvolver is implemented by models with allocation-free evolve
// kernels (CompactModel, BasicModel).
type inPlaceEvolver interface {
	EvolveInPlace(d markov.Dist, steps int)
}

// evolveFresh advances d, which the caller owns and will not reuse,
// preferring the in-place kernel when the model has one.
func evolveFresh(m Model, d markov.Dist, steps int) markov.Dist {
	if ip, ok := m.(inPlaceEvolver); ok {
		ip.EvolveInPlace(d, steps)
		return d
	}
	return m.Evolve(d, steps)
}

// NewCompactSelector builds the compact model for cfg and its
// target-conditioned twin, then assembles a selector — the paper's
// end-to-end attacker setup. steps is T = ⌈window/Δ⌉. Both chains come
// from the DefaultModelCache, so repeated selectors over one
// configuration (experiment trials, window sweeps) rebuild nothing.
func NewCompactSelector(cfg Config, target flows.ID, steps int, params USumParams) (*ProbeSelector, error) {
	if int(target) < 0 || int(target) >= len(cfg.Rates) {
		return nil, fmt.Errorf("core: target flow %d outside universe of %d flows", target, len(cfg.Rates))
	}
	m, err := CachedCompactModel(cfg, params)
	if err != nil {
		return nil, err
	}
	m0, err := CachedCompactModel(cfg.withoutFlow(target), params)
	if err != nil {
		return nil, err
	}
	return NewProbeSelector(m, m0, target, steps)
}

// NewSteadySelector is NewCompactSelector with the attack window starting
// from the network's stationary regime instead of an empty cache: the
// paper's I_0 (Eqn 8) is the empty-table point mass because its testbed
// starts cold, but an attacker joining a long-running network should seed
// both chains with the unconditional steady state and apply the target
// conditioning only within the window.
func NewSteadySelector(cfg Config, target flows.ID, steps int, params USumParams) (*ProbeSelector, error) {
	if int(target) < 0 || int(target) >= len(cfg.Rates) {
		return nil, fmt.Errorf("core: target flow %d outside universe of %d flows", target, len(cfg.Rates))
	}
	if steps < 1 {
		return nil, fmt.Errorf("core: probe window %d steps < 1", steps)
	}
	m, err := CachedCompactModel(cfg, params)
	if err != nil {
		return nil, err
	}
	m0, err := CachedCompactModel(cfg.withoutFlow(target), params)
	if err != nil {
		return nil, err
	}
	steady, _ := m.SteadyState(1e-10, 100000)
	s := &ProbeSelector{
		model:   m,
		model0:  m0,
		target:  target,
		steps:   steps,
		pAbsent: math.Exp(-cfg.Rates[target] * cfg.Delta * float64(steps)),
	}
	s.dist = m.Evolve(steady, steps)
	s.dist0 = m0.Evolve(steady.Clone(), steps)
	return s, nil
}

// NewSelectorWithModel assembles a selector around a prebuilt
// unconditional model, building only the target-conditioned chain. Useful
// when evaluating many targets over one policy (the defense package's
// leakage profiling), since the unconditional chain is target-independent.
func NewSelectorWithModel(m *CompactModel, cfg Config, target flows.ID, steps int, params USumParams) (*ProbeSelector, error) {
	if int(target) < 0 || int(target) >= len(cfg.Rates) {
		return nil, fmt.Errorf("core: target flow %d outside universe of %d flows", target, len(cfg.Rates))
	}
	m0, err := CachedCompactModel(cfg.withoutFlow(target), params)
	if err != nil {
		return nil, err
	}
	return NewProbeSelector(m, m0, target, steps)
}

// Target returns the target flow f̂.
func (s *ProbeSelector) Target() flows.ID { return s.target }

// Steps returns the probe window T in steps.
func (s *ProbeSelector) Steps() int { return s.steps }

// PAbsent returns P(X̂ = 0), the prior probability the target flow did not
// occur in the window.
func (s *ProbeSelector) PAbsent() float64 { return s.pAbsent }

// PriorEntropy returns H(X̂) in bits.
func (s *ProbeSelector) PriorEntropy() float64 {
	return stats.BinaryEntropy(s.pAbsent)
}

// StateDist returns a copy of the evolved unconditional distribution I_T.
func (s *ProbeSelector) StateDist() markov.Dist { return s.dist.Clone() }

// ProbeEval is the evaluation of one candidate probe flow.
type ProbeEval struct {
	// Flow is the candidate probe.
	Flow flows.ID
	// Gain is IG(X̂ | Q_f) in bits.
	Gain float64
	// PHit is P(Q_f = 1).
	PHit float64
	// Joint[x][q] is P(X̂ = x ∧ Q_f = q).
	Joint [2][2]float64
	// PostAbsentGivenMiss is P(X̂ = 0 | Q_f = 0); NaN if P(Q_f = 0) = 0.
	PostAbsentGivenMiss float64
	// PostPresentGivenHit is P(X̂ = 1 | Q_f = 1); NaN if P(Q_f = 1) = 0.
	PostPresentGivenHit float64
}

// DetectorViable reports the paper's §VI-B configuration filter: the probe
// is a usable detector when P(X̂=0 | Q_f=0) > 0.5 and P(X̂=1 | Q_f=1) > 0.5.
func (e ProbeEval) DetectorViable() bool {
	return e.PostAbsentGivenMiss > 0.5 && e.PostPresentGivenHit > 0.5
}

// PosteriorPresent returns P(X̂ = 1 | Q_f = q) for an observed outcome.
func (e ProbeEval) PosteriorPresent(hit bool) float64 {
	q := 0
	if hit {
		q = 1
	}
	pq := e.Joint[0][q] + e.Joint[1][q]
	if pq <= 0 {
		return 1 - e.priorAbsent()
	}
	return e.Joint[1][q] / pq
}

func (e ProbeEval) priorAbsent() float64 {
	return e.Joint[0][0] + e.Joint[0][1]
}

// Evaluate computes the §V-A quantities for probing with flow f.
func (s *ProbeSelector) Evaluate(f flows.ID) ProbeEval {
	e := ProbeEval{Flow: f}
	e.PHit = s.model.HitProbability(s.dist, f)
	hitGiven0 := s.model0.HitProbability(s.dist0, f)

	e.Joint[0][1] = s.pAbsent * hitGiven0
	e.Joint[0][0] = s.pAbsent * (1 - hitGiven0)
	e.Joint[1][1] = clamp01(e.PHit - e.Joint[0][1])
	e.Joint[1][0] = clamp01((1 - e.PHit) - e.Joint[0][0])

	if pMiss := e.Joint[0][0] + e.Joint[1][0]; pMiss > 0 {
		e.PostAbsentGivenMiss = e.Joint[0][0] / pMiss
	} else {
		e.PostAbsentGivenMiss = math.NaN()
	}
	if pHit := e.Joint[0][1] + e.Joint[1][1]; pHit > 0 {
		e.PostPresentGivenHit = e.Joint[1][1] / pHit
	} else {
		e.PostPresentGivenHit = math.NaN()
	}

	e.Gain = s.PriorEntropy() - stats.ConditionalEntropyBits2x2(e.Joint)
	if e.Gain < 0 {
		e.Gain = 0 // numerical noise; information gain is non-negative
	}
	return e
}

// Best evaluates every candidate probe and returns the one with the
// largest information gain. ok is false when candidates is empty.
func (s *ProbeSelector) Best(candidates []flows.ID) (best ProbeEval, ok bool) {
	for _, f := range candidates {
		e := s.Evaluate(f)
		if !ok || e.Gain > best.Gain {
			best, ok = e, true
		}
	}
	return best, ok
}

// AllFlows returns the candidate list 0..|rates|-1, the attacker's full
// probe vocabulary.
func (s *ProbeSelector) AllFlows() []flows.ID {
	n := len(s.model.ModelConfig().Rates)
	out := make([]flows.ID, n)
	for i := range out {
		out[i] = flows.ID(i)
	}
	return out
}

// FlowsExcept returns every flow except the listed ones — the §VI "attacker
// cannot probe f̂" candidate set.
func (s *ProbeSelector) FlowsExcept(excluded ...flows.ID) []flows.ID {
	skip := make(map[flows.ID]bool, len(excluded))
	for _, f := range excluded {
		skip[f] = true
	}
	var out []flows.ID
	for _, f := range s.AllFlows() {
		if !skip[f] {
			out = append(out, f)
		}
	}
	return out
}
