package core

import (
	"fmt"

	"flowrecon/internal/flows"
	"flowrecon/internal/markov"
	"flowrecon/internal/stats"
)

// The paper selects multiple probes non-adaptively (§V-B). This file
// implements the natural extension it leaves open: adaptive probing,
// where each probe is chosen after observing the previous outcome. An
// adaptive plan is a decision tree whose expected information gain is
// never below the best non-adaptive sequence over the same candidates.

// AdaptiveNode is one node of an adaptive probing plan.
type AdaptiveNode struct {
	// Probe is the flow to send at this node (undefined for leaves).
	Probe flows.ID
	// Leaf marks nodes where probing stops.
	Leaf bool
	// PosteriorPresent is P(X̂ = 1 | outcomes so far).
	PosteriorPresent float64
	// PathProb is P(reaching this node).
	PathProb float64
	// Miss and Hit are the children for the two outcomes.
	Miss, Hit *AdaptiveNode
}

// Decide walks the plan with observed outcomes and returns the verdict at
// the reached node.
func (n *AdaptiveNode) Decide(outcomes []bool) bool {
	cur := n
	for _, hit := range outcomes {
		if cur.Leaf {
			break
		}
		if hit {
			cur = cur.Hit
		} else {
			cur = cur.Miss
		}
	}
	return cur.PosteriorPresent > 0.5
}

// PosteriorAfter returns P(X̂ = 1 | outcomes) at the node reached by
// walking the plan with the observed outcomes. Outcomes beyond the
// plan's depth leave the belief at the reached leaf, matching Decide.
func (n *AdaptiveNode) PosteriorAfter(outcomes []bool) float64 {
	cur := n
	for _, hit := range outcomes {
		if cur.Leaf {
			break
		}
		if hit {
			cur = cur.Hit
		} else {
			cur = cur.Miss
		}
	}
	return cur.PosteriorPresent
}

// NextProbe returns the probe at the node reached by outcomes, and false
// once the plan is exhausted.
func (n *AdaptiveNode) NextProbe(outcomes []bool) (flows.ID, bool) {
	cur := n
	for _, hit := range outcomes {
		if cur.Leaf {
			return 0, false
		}
		if hit {
			cur = cur.Hit
		} else {
			cur = cur.Miss
		}
	}
	if cur.Leaf {
		return 0, false
	}
	return cur.Probe, true
}

// ExpectedGain returns the plan's expected information gain about X̂ in
// bits: H(X̂) minus the path-probability-weighted entropy at the leaves.
func (s *ProbeSelector) ExpectedGain(root *AdaptiveNode) float64 {
	var hCond float64
	var walk func(n *AdaptiveNode)
	walk = func(n *AdaptiveNode) {
		if n.Leaf {
			hCond += n.PathProb * stats.BinaryEntropy(n.PosteriorPresent)
			return
		}
		walk(n.Miss)
		walk(n.Hit)
	}
	walk(root)
	g := s.PriorEntropy() - hCond
	if g < 0 {
		return 0
	}
	return g
}

// BuildAdaptiveTree plans up to depth probes adaptively: at every node the
// probe with maximal one-step information gain under the
// outcome-conditioned state distribution is chosen (greedy, the standard
// construction for adaptive channel probing).
func (s *ProbeSelector) BuildAdaptiveTree(candidates []flows.ID, depth int) (*AdaptiveNode, error) {
	if len(candidates) == 0 || depth < 1 {
		return nil, fmt.Errorf("core: adaptive plan needs candidates and depth ≥ 1")
	}
	root := s.buildAdaptive(candidates, depth, s.dist.Clone(), s.dist0.Clone(), 1)
	return root, nil
}

// buildAdaptive recursively expands a node. d is the unconditional state
// distribution restricted to this path (unnormalized: its mass is the
// path probability); d0 the target-absent counterpart (mass = P(path |
// X̂=0) before the pAbsent factor).
func (s *ProbeSelector) buildAdaptive(candidates []flows.ID, depth int, d, d0 markov.Dist, pathP float64) *AdaptiveNode {
	pq := d.Sum()
	pq0 := s.pAbsent * d0.Sum()
	node := &AdaptiveNode{PathProb: pq}
	if pq <= 0 {
		node.Leaf = true
		node.PosteriorPresent = 1 - s.pAbsent
		return node
	}
	node.PosteriorPresent = clamp01(pq-pq0) / pq

	if depth == 0 {
		node.Leaf = true
		return node
	}
	// Greedy choice: the probe with maximal conditional information gain
	// at this node.
	bestFlow, bestGain := flows.ID(0), -1.0
	hPrior := stats.BinaryEntropy(node.PosteriorPresent)
	for _, f := range candidates {
		hit, miss := s.model.SplitByHit(d, f)
		hit0, miss0 := s.model0.SplitByHit(d0, f)
		var hCond float64
		for _, br := range []struct{ d, d0 markov.Dist }{{miss, miss0}, {hit, hit0}} {
			bq := br.d.Sum() / pq
			if bq <= 0 {
				continue
			}
			bq0 := s.pAbsent * br.d0.Sum() / pq
			post := clamp01(bq-bq0) / bq
			hCond += bq * stats.BinaryEntropy(post)
		}
		if gain := hPrior - hCond; gain > bestGain {
			bestGain, bestFlow = gain, f
		}
	}
	if bestGain <= 1e-12 {
		node.Leaf = true // no probe adds information here
		return node
	}
	node.Probe = bestFlow
	hit, miss := s.model.SplitByHit(d, bestFlow)
	hit0, miss0 := s.model0.SplitByHit(d0, bestFlow)
	node.Miss = s.buildAdaptive(candidates, depth-1,
		s.model.ApplyProbe(miss, bestFlow, false), s.model0.ApplyProbe(miss0, bestFlow, false), miss.Sum())
	node.Hit = s.buildAdaptive(candidates, depth-1,
		s.model.ApplyProbe(hit, bestFlow, true), s.model0.ApplyProbe(hit0, bestFlow, true), hit.Sum())
	return node
}

// AdaptiveAttacker probes according to an adaptive plan, choosing each
// probe from the previous outcomes.
type AdaptiveAttacker struct {
	tree  *AdaptiveNode
	depth int
	sel   *ProbeSelector
}

var (
	_ Attacker       = (*AdaptiveAttacker)(nil)
	_ BeliefProvider = (*AdaptiveAttacker)(nil)
)

// NewAdaptiveAttacker plans an adaptive attack of up to depth probes.
func NewAdaptiveAttacker(sel *ProbeSelector, candidates []flows.ID, depth int) (*AdaptiveAttacker, error) {
	tree, err := sel.BuildAdaptiveTree(candidates, depth)
	if err != nil {
		return nil, err
	}
	return &AdaptiveAttacker{tree: tree, depth: depth, sel: sel}, nil
}

// Selector implements BeliefProvider.
func (a *AdaptiveAttacker) Selector() *ProbeSelector { return a.sel }

// Name implements Attacker.
func (a *AdaptiveAttacker) Name() string { return fmt.Sprintf("adaptive(m=%d)", a.depth) }

// Probes implements Attacker: the first probe only; subsequent probes come
// from NextProbe (the trial runner detects sequential attackers).
func (a *AdaptiveAttacker) Probes() []flows.ID {
	if a.tree.Leaf {
		return nil
	}
	return []flows.ID{a.tree.Probe}
}

// NextProbe returns the probe to send after the given outcomes.
func (a *AdaptiveAttacker) NextProbe(outcomes []bool) (flows.ID, bool) {
	return a.tree.NextProbe(outcomes)
}

// Decide implements Attacker.
func (a *AdaptiveAttacker) Decide(outcomes []bool, _ *stats.RNG) bool {
	return a.tree.Decide(outcomes)
}

// Tree exposes the plan for inspection.
func (a *AdaptiveAttacker) Tree() *AdaptiveNode { return a.tree }
