package core

import (
	"testing"

	"flowrecon/internal/rules"
	"flowrecon/internal/stats"
	"flowrecon/internal/workload"
)

// parallelTestConfig is a paper-shaped configuration (16 flows, 12 rules)
// with a low exact-enumeration limit so most states take the Monte-Carlo
// u-sum path — the code whose determinism under concurrency is the point
// of these tests.
func parallelTestConfig(t *testing.T) (Config, USumParams) {
	t.Helper()
	rng := stats.NewRNG(7)
	rs, err := rules.Generate(rules.DefaultGenerateConfig(0.025), rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Rules:     rs,
		Rates:     workload.UniformRates(16, rng),
		Delta:     0.025,
		CacheSize: 5,
	}
	return cfg, USumParams{ExactLimit: 2000, MCSamples: 150, Seed: 3}
}

// TestParallelBuildBitIdentical builds the same compact model serially
// and with a worker pool and requires the transition matrices to agree
// to the last bit: per-state Monte-Carlo streams are seeded by state
// identity, not evaluation order, so worker scheduling must not leak
// into the numbers.
func TestParallelBuildBitIdentical(t *testing.T) {
	cfg, params := parallelTestConfig(t)

	ResetUSumMemo()
	serial, err := NewCompactModelWorkers(cfg, params, 1)
	if err != nil {
		t.Fatal(err)
	}
	ResetUSumMemo()
	parallel, err := NewCompactModelWorkers(cfg, params, 8)
	if err != nil {
		t.Fatal(err)
	}

	if serial.NumStates() != parallel.NumStates() {
		t.Fatalf("state counts differ: %d vs %d", serial.NumStates(), parallel.NumStates())
	}
	for i := 0; i < serial.NumStates(); i++ {
		if serial.StateMask(i) != parallel.StateMask(i) {
			t.Fatalf("state %d mask differs: %x vs %x", i, serial.StateMask(i), parallel.StateMask(i))
		}
		tosS, psS := serial.Matrix().Row(i)
		tosP, psP := parallel.Matrix().Row(i)
		if len(tosS) != len(tosP) {
			t.Fatalf("state %d row length differs: %d vs %d", i, len(tosS), len(tosP))
		}
		for k := range tosS {
			if tosS[k] != tosP[k] {
				t.Fatalf("state %d entry %d destination differs: %d vs %d", i, k, tosS[k], tosP[k])
			}
			if psS[k] != psP[k] { // exact: 0 ulp
				t.Fatalf("state %d entry %d probability differs: %v vs %v", i, k, psS[k], psP[k])
			}
		}
	}
}

// TestParallelBuildMemoShared verifies the build memoizes u-sum estimates
// across the conditioned chain pair: building M then M₀ must hit the
// memo rather than resample, and a memoized rebuild must reproduce the
// cold matrix exactly.
func TestMemoizedRebuildBitIdentical(t *testing.T) {
	cfg, params := parallelTestConfig(t)

	ResetUSumMemo()
	cold, err := NewCompactModel(cfg, params)
	if err != nil {
		t.Fatal(err)
	}
	if USumMemoLen() == 0 {
		t.Fatal("cold build left the u-sum memo empty")
	}
	warm, err := NewCompactModel(cfg, params)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cold.NumStates(); i++ {
		_, psC := cold.Matrix().Row(i)
		_, psW := warm.Matrix().Row(i)
		for k := range psC {
			if psC[k] != psW[k] {
				t.Fatalf("state %d entry %d: warm rebuild diverged: %v vs %v", i, k, psC[k], psW[k])
			}
		}
	}
}
