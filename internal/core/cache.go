package core

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"sync"

	"flowrecon/internal/flows"
)

// ConfigKey is the canonical hash identifying a (Config, USumParams)
// pair: rule structure (priority, timeout, kind, cover), rate vector
// bits, Δ, cache size, and estimator parameters. Two configurations with
// equal keys build identical compact models.
type ConfigKey [sha256.Size]byte

// KeyOf computes the canonical key of a model configuration.
func KeyOf(cfg Config, params USumParams) ConfigKey {
	h := sha256.New()
	var buf [8]byte
	w64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	if cfg.Rules != nil {
		w64(uint64(cfg.Rules.Len()))
		for j := 0; j < cfg.Rules.Len(); j++ {
			r := cfg.Rules.Rule(j)
			w64(uint64(int64(r.Priority)))
			w64(uint64(r.Timeout))
			w64(uint64(r.Kind))
			w64(uint64(r.Cover.Len()))
			r.Cover.ForEach(func(f flows.ID) { w64(uint64(f)) })
		}
	}
	w64(uint64(len(cfg.Rates)))
	for _, r := range cfg.Rates {
		w64(math.Float64bits(r))
	}
	w64(math.Float64bits(cfg.Delta))
	w64(uint64(cfg.CacheSize))
	w64(uint64(params.ExactLimit))
	w64(uint64(params.MCSamples))
	w64(uint64(params.Seed))
	var key ConfigKey
	h.Sum(key[:0])
	return key
}

// ModelCache memoizes compact-model builds by canonical configuration
// key so that GainVsWindow sweeps, ProbeSelector constructors, the
// defense leakage profiler, repeated experiment trials, and the
// flowrecond shared model store stop paying the §IV-B build for
// identical chains. Lookups are singleflight: when several goroutines
// request the same key, one builds and the rest wait. Residency is
// bounded two ways — an entry count and an optional byte budget — with
// LRU eviction (evicted in-flight builds still complete for their
// waiters).
type ModelCache struct {
	mu       sync.Mutex
	max      int
	maxBytes int64 // 0 = unbounded
	workers  int   // build worker count; 0 = GOMAXPROCS
	entries  map[ConfigKey]*modelEntry
	// Intrusive LRU list: head is most recently used, tail next to evict.
	head, tail *modelEntry
	bytes      int64
	hits       uint64
	misses     uint64
	evictions  uint64
}

type modelEntry struct {
	key        ConfigKey
	prev, next *modelEntry
	resident   bool // still in the map (false once evicted)
	bytes      int64
	once       sync.Once
	m          *CompactModel
	err        error
}

// NewModelCache returns a cache holding at most max models (≤ 0 means
// the DefaultModelCacheSize) with no byte budget.
func NewModelCache(max int) *ModelCache {
	if max <= 0 {
		max = DefaultModelCacheSize
	}
	return &ModelCache{max: max, entries: make(map[ConfigKey]*modelEntry)}
}

// SetMaxBytes bounds the summed MemBytes of resident models (0 removes
// the bound). Lowering the budget evicts immediately. The budget is
// best-effort: an entry whose build is still in flight occupies zero
// bytes until it completes, and the most recently used entry is never
// evicted, so one oversized model can exceed the budget alone.
func (c *ModelCache) SetMaxBytes(n int64) {
	c.mu.Lock()
	c.maxBytes = n
	c.evictOverLocked()
	c.mu.Unlock()
}

// SetBuildWorkers fixes the worker count used for cache-miss builds
// (≤ 0 restores the GOMAXPROCS default). Models are bit-identical at any
// worker count; this only controls how much CPU one build may grab —
// a service running many sessions wants 1, a lone CLI wants them all.
func (c *ModelCache) SetBuildWorkers(n int) {
	c.mu.Lock()
	if n < 0 {
		n = 0
	}
	c.workers = n
	c.mu.Unlock()
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Entries   int
	Bytes     int64 // summed MemBytes of resident, completed builds
	MaxBytes  int64 // 0 = unbounded
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// Stats snapshots the cache counters.
func (c *ModelCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   len(c.entries),
		Bytes:     c.bytes,
		MaxBytes:  c.maxBytes,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}

// moveToFrontLocked makes e the most recently used entry.
func (c *ModelCache) moveToFrontLocked(e *modelEntry) {
	if c.head == e {
		return
	}
	// Unlink (no-op for a new entry with nil links not yet in the list).
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if c.tail == e {
		c.tail = e.prev
	}
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// evictOverLocked drops LRU-tail entries until both bounds hold. The
// head entry is always spared so a Get can never evict what it returns.
func (c *ModelCache) evictOverLocked() {
	for c.tail != nil && c.tail != c.head &&
		(len(c.entries) > c.max || (c.maxBytes > 0 && c.bytes > c.maxBytes)) {
		e := c.tail
		c.tail = e.prev
		if c.tail != nil {
			c.tail.next = nil
		}
		e.prev, e.next = nil, nil
		e.resident = false
		c.bytes -= e.bytes
		delete(c.entries, e.key)
		c.evictions++
	}
}

// DefaultModelCacheSize bounds the process-wide DefaultModelCache. A
// paper-scale model is a few MB; 32 of them cover a full defense
// profile (one M plus one M₀ per target) with room to spare.
const DefaultModelCacheSize = 32

// DefaultModelCache serves the package-level cached constructors.
var DefaultModelCache = NewModelCache(DefaultModelCacheSize)

// Get returns the cached model for (cfg, params), building it on first
// use. The returned model is shared: it is immutable after construction
// and safe for concurrent use, but callers must not mutate its exposed
// matrix.
func (c *ModelCache) Get(cfg Config, params USumParams) (*CompactModel, error) {
	key := KeyOf(cfg, params)
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &modelEntry{key: key, resident: true}
		c.entries[key] = e
		c.misses++
	} else {
		c.hits++
	}
	c.moveToFrontLocked(e)
	c.evictOverLocked()
	workers := c.workers
	c.mu.Unlock()
	obsModelCache(ok)
	built := false
	e.once.Do(func() {
		e.m, e.err = NewCompactModelWorkers(cfg, params, workers)
		built = true
	})
	if built && e.m != nil {
		// Charge the finished build against the byte budget. The entry may
		// have been evicted while building; its waiters still get the model,
		// but a ghost must not count toward resident bytes.
		c.mu.Lock()
		if e.resident {
			e.bytes = e.m.MemBytes()
			c.bytes += e.bytes
			c.evictOverLocked()
		}
		c.mu.Unlock()
	}
	return e.m, e.err
}

// Len reports the number of resident entries.
func (c *ModelCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Reset drops every entry and zeroes the counters. Benchmarks use it to
// measure cold builds; the service benchmarks' naive baseline uses it to
// model independent single-session processes.
func (c *ModelCache) Reset() {
	c.mu.Lock()
	for _, e := range c.entries {
		e.resident = false
		e.prev, e.next = nil, nil
	}
	c.entries = make(map[ConfigKey]*modelEntry)
	c.head, c.tail = nil, nil
	c.bytes = 0
	c.hits, c.misses, c.evictions = 0, 0, 0
	c.mu.Unlock()
}

// CachedCompactModel is NewCompactModel through the DefaultModelCache.
func CachedCompactModel(cfg Config, params USumParams) (*CompactModel, error) {
	return DefaultModelCache.Get(cfg, params)
}
