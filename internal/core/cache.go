package core

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"sync"

	"flowrecon/internal/flows"
)

// ConfigKey is the canonical hash identifying a (Config, USumParams)
// pair: rule structure (priority, timeout, kind, cover), rate vector
// bits, Δ, cache size, and estimator parameters. Two configurations with
// equal keys build identical compact models.
type ConfigKey [sha256.Size]byte

// KeyOf computes the canonical key of a model configuration.
func KeyOf(cfg Config, params USumParams) ConfigKey {
	h := sha256.New()
	var buf [8]byte
	w64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	if cfg.Rules != nil {
		w64(uint64(cfg.Rules.Len()))
		for j := 0; j < cfg.Rules.Len(); j++ {
			r := cfg.Rules.Rule(j)
			w64(uint64(int64(r.Priority)))
			w64(uint64(r.Timeout))
			w64(uint64(r.Kind))
			w64(uint64(r.Cover.Len()))
			r.Cover.ForEach(func(f flows.ID) { w64(uint64(f)) })
		}
	}
	w64(uint64(len(cfg.Rates)))
	for _, r := range cfg.Rates {
		w64(math.Float64bits(r))
	}
	w64(math.Float64bits(cfg.Delta))
	w64(uint64(cfg.CacheSize))
	w64(uint64(params.ExactLimit))
	w64(uint64(params.MCSamples))
	w64(uint64(params.Seed))
	var key ConfigKey
	h.Sum(key[:0])
	return key
}

// ModelCache memoizes compact-model builds by canonical configuration
// key so that GainVsWindow sweeps, ProbeSelector constructors, the
// defense leakage profiler, and repeated experiment trials stop paying
// the §IV-B build for identical chains. Lookups are singleflight: when
// several goroutines request the same key, one builds and the rest wait.
// Capacity is bounded with FIFO eviction (evicted in-flight builds still
// complete for their waiters).
type ModelCache struct {
	mu      sync.Mutex
	max     int
	entries map[ConfigKey]*modelEntry
	order   []ConfigKey
}

type modelEntry struct {
	once sync.Once
	m    *CompactModel
	err  error
}

// NewModelCache returns a cache holding at most max models (≤ 0 means
// the DefaultModelCacheSize).
func NewModelCache(max int) *ModelCache {
	if max <= 0 {
		max = DefaultModelCacheSize
	}
	return &ModelCache{max: max, entries: make(map[ConfigKey]*modelEntry)}
}

// DefaultModelCacheSize bounds the process-wide DefaultModelCache. A
// paper-scale model is a few MB; 32 of them cover a full defense
// profile (one M plus one M₀ per target) with room to spare.
const DefaultModelCacheSize = 32

// DefaultModelCache serves the package-level cached constructors.
var DefaultModelCache = NewModelCache(DefaultModelCacheSize)

// Get returns the cached model for (cfg, params), building it on first
// use. The returned model is shared: it is immutable after construction
// and safe for concurrent use, but callers must not mutate its exposed
// matrix.
func (c *ModelCache) Get(cfg Config, params USumParams) (*CompactModel, error) {
	key := KeyOf(cfg, params)
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &modelEntry{}
		c.entries[key] = e
		c.order = append(c.order, key)
		for len(c.order) > c.max {
			old := c.order[0]
			c.order = c.order[1:]
			delete(c.entries, old)
		}
	}
	c.mu.Unlock()
	obsModelCache(ok)
	e.once.Do(func() {
		e.m, e.err = NewCompactModel(cfg, params)
	})
	return e.m, e.err
}

// Len reports the number of resident entries.
func (c *ModelCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Reset drops every entry. Benchmarks use it to measure cold builds.
func (c *ModelCache) Reset() {
	c.mu.Lock()
	c.entries = make(map[ConfigKey]*modelEntry)
	c.order = nil
	c.mu.Unlock()
}

// CachedCompactModel is NewCompactModel through the DefaultModelCache.
func CachedCompactModel(cfg Config, params USumParams) (*CompactModel, error) {
	return DefaultModelCache.Get(cfg, params)
}
