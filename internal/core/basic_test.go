package core

import (
	"math"
	"testing"

	"flowrecon/internal/flows"
	"flowrecon/internal/flowtable"
	"flowrecon/internal/markov"
	"flowrecon/internal/rules"
	"flowrecon/internal/stats"
	"flowrecon/internal/workload"
)

// tinyConfig builds the paper's Figure 3 rule structure with small
// timeouts so the basic model's state space stays tiny: rule0 covers f0;
// rule1 covers {f0,f1} at lower priority; rule2 covers f2. Cache size 2.
func tinyConfig(t *testing.T) Config {
	t.Helper()
	rs, err := rules.NewSet([]rules.Rule{
		{Name: "rule1", Cover: flows.SetOf(0), Priority: 3, Timeout: 3},
		{Name: "rule2", Cover: flows.SetOf(0, 1), Priority: 2, Timeout: 4},
		{Name: "rule3", Cover: flows.SetOf(2), Priority: 1, Timeout: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Rules:     rs,
		Rates:     []float64{0.8, 0.5, 0.9},
		Delta:     0.2,
		CacheSize: 2,
	}
}

func TestConfigValidate(t *testing.T) {
	good := tinyConfig(t)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Delta = 0
	if bad.Validate() == nil {
		t.Fatal("zero delta accepted")
	}
	bad = good
	bad.CacheSize = 0
	if bad.Validate() == nil {
		t.Fatal("zero cache accepted")
	}
	bad = good
	bad.Rates = []float64{1, math.NaN(), 1}
	if bad.Validate() == nil {
		t.Fatal("NaN rate accepted")
	}
	bad = good
	bad.Rates = []float64{1} // rules cover flows 0..2
	if bad.Validate() == nil {
		t.Fatal("out-of-universe cover accepted")
	}
	bad = good
	bad.Rules = nil
	if bad.Validate() == nil {
		t.Fatal("nil rules accepted")
	}
	bad = good
	bad.Rates = nil
	if bad.Validate() == nil {
		t.Fatal("nil rates accepted")
	}
}

func TestRelevantFlows(t *testing.T) {
	cfg := tinyConfig(t)
	// Cache = {rule0}: rule0 cached → relevant {f0}. rule1 uncached →
	// subtract cached rule0 and (no higher-priority uncached) → {f1}.
	cached := func(j int) bool { return j == 0 }
	if rel := relevantFlows(cfg.Rules, cached, 0); !rel.Equal(flows.SetOf(0)) {
		t.Fatalf("rel(rule0) = %v", rel)
	}
	if rel := relevantFlows(cfg.Rules, cached, 1); !rel.Equal(flows.SetOf(1)) {
		t.Fatalf("rel(rule1) = %v", rel)
	}
	if rel := relevantFlows(cfg.Rules, cached, 2); !rel.Equal(flows.SetOf(2)) {
		t.Fatalf("rel(rule2) = %v", rel)
	}
	// Cache = {rule1}: rule1 cached, no higher-priority rule cached →
	// relevant {f0, f1}. rule0 uncached: subtract cached rule1 → ∅.
	cached = func(j int) bool { return j == 1 }
	if rel := relevantFlows(cfg.Rules, cached, 1); !rel.Equal(flows.SetOf(0, 1)) {
		t.Fatalf("rel(rule1) = %v", rel)
	}
	if rel := relevantFlows(cfg.Rules, cached, 0); !rel.Empty() {
		t.Fatalf("rel(rule0) = %v, want empty", rel)
	}
	// Empty cache: rule1's relevant flows exclude those of
	// higher-priority uncached rule0 → {f1}.
	cached = func(int) bool { return false }
	if rel := relevantFlows(cfg.Rules, cached, 1); !rel.Equal(flows.SetOf(1)) {
		t.Fatalf("rel(rule1) empty cache = %v", rel)
	}
}

func TestEventWeightsNormalizable(t *testing.T) {
	cfg := tinyConfig(t)
	w := computeEventWeights(cfg.Rules, cfg.stepRates(), func(int) bool { return false })
	if w.null <= 0 || w.null >= 1 {
		t.Fatalf("null weight = %v", w.null)
	}
	var total float64
	for _, a := range w.arrival {
		if a < 0 {
			t.Fatalf("negative arrival weight: %v", w.arrival)
		}
		total += a
	}
	if total <= 0 {
		t.Fatal("no arrival events from empty cache")
	}
}

func TestStepRatesZeroUncovered(t *testing.T) {
	cfg := tinyConfig(t)
	cfg.Rates = []float64{0.8, 0.5, 0.9, 7.0} // flow 3 covered by nothing
	sr := cfg.stepRates()
	if sr[3] != 0 {
		t.Fatalf("uncovered flow rate = %v, want 0", sr[3])
	}
	if sr[0] != 0.8*cfg.Delta {
		t.Fatalf("sr[0] = %v", sr[0])
	}
}

func TestBasicStateCountClosedForm(t *testing.T) {
	// Two rules with t=1, n=1: states = {} + ordered singletons with
	// clocks 0..1 → 1 + 2·2 = 5.
	if got := BasicStateCount([]int{1, 1}, 1); got != 5 {
		t.Fatalf("count = %v, want 5", got)
	}
	// Brute force against the definition for a slightly larger case.
	touts := []int{2, 3, 4}
	n := 2
	want := 0.0
	for mask := 0; mask < 8; mask++ {
		size, prod := 0, 1
		for j := 0; j < 3; j++ {
			if mask&(1<<j) != 0 {
				size++
				prod *= touts[j] + 1
			}
		}
		if size <= n {
			f := 1
			for k := 2; k <= size; k++ {
				f *= k
			}
			want += float64(f * prod)
		}
	}
	if got := BasicStateCount(touts, n); got != want {
		t.Fatalf("count = %v, want %v", got, want)
	}
}

func TestBasicStateCountPaperExample(t *testing.T) {
	// §IV-A2: |Rules| = 10, t_j = 100, n = 8. The formula's value is
	// astronomically larger than the paper's quoted 5.9×10⁷ (see
	// EXPERIMENTS.md); here we only pin the closed form against a direct
	// evaluation Σ_{k≤8} k!·C(10,k)·101^k.
	touts := make([]int, 10)
	for i := range touts {
		touts[i] = 100
	}
	want := 0.0
	fact := 1.0
	c := 1.0
	pow := 1.0
	for k := 0; k <= 8; k++ {
		if k > 0 {
			fact *= float64(k)
			c = c * float64(10-k+1) / float64(k)
			pow *= 101
		}
		want += fact * c * pow
	}
	got := BasicStateCount(touts, 8)
	if math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("count = %v, want %v", got, want)
	}
}

func TestBasicModelBuild(t *testing.T) {
	cfg := tinyConfig(t)
	m, err := NewBasicModel(cfg, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumStates() < 10 {
		t.Fatalf("suspiciously few states: %d", m.NumStates())
	}
	if float64(m.NumStates()) > BasicStateCount([]int{3, 4, 3}, 2) {
		t.Fatalf("reachable states %d exceed closed-form bound", m.NumStates())
	}
	if err := m.Matrix().CheckStochastic(1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestBasicModelStateLimit(t *testing.T) {
	cfg := tinyConfig(t)
	if _, err := NewBasicModel(cfg, 3); err == nil {
		t.Fatal("state limit not enforced")
	}
}

func TestBasicModelHitProbabilityGrowsFromEmpty(t *testing.T) {
	cfg := tinyConfig(t)
	m, err := NewBasicModel(cfg, 200000)
	if err != nil {
		t.Fatal(err)
	}
	d0 := m.InitialDist()
	if p := m.HitProbability(d0, 0); p != 0 {
		t.Fatalf("hit probability in empty cache = %v", p)
	}
	d := m.Evolve(d0, 30)
	if math.Abs(d.Sum()-1) > 1e-9 {
		t.Fatalf("mass = %v", d.Sum())
	}
	p := m.HitProbability(d, 0)
	if p <= 0 || p >= 1 {
		t.Fatalf("hit probability after 30 steps = %v", p)
	}
}

// TestBasicModelAgainstStepSimulation drives the executable StepTable with
// discretized Poisson arrivals and compares the empirical hit probability
// at step T with the chain's prediction.
func TestBasicModelAgainstStepSimulation(t *testing.T) {
	// Use a small Δ so that two arrivals in one step are rare — the
	// regime the basic model is derived for (§IV-A).
	cfg := tinyConfig(t)
	cfg.Delta = 0.05
	m, err := NewBasicModel(cfg, 400000)
	if err != nil {
		t.Fatal(err)
	}
	const (
		steps  = 80
		trials = 6000
	)
	dT := m.Evolve(m.InitialDist(), steps)

	rng := stats.NewRNG(42)
	hits := make([]int, len(cfg.Rates))
	cachedCount := make([]int, cfg.Rules.Len())
	for trial := 0; trial < trials; trial++ {
		tr, err := workload.GeneratePoisson(workload.PoissonConfig{
			Rates:    cfg.Rates,
			Duration: float64(steps) * cfg.Delta,
		}, rng.Fork())
		if err != nil {
			t.Fatal(err)
		}
		st := flowtable.NewStepTable(cfg.Rules, cfg.CacheSize)
		perStep := workload.StepArrivals(tr, cfg.Delta, steps)
		for s := 0; s < steps; s++ {
			if st.PendingTimeout() {
				st.StepTimeout()
				continue // the chain spends a step on the timeout
			}
			if len(perStep[s]) > 0 {
				st.StepArrival(perStep[s][0]) // chain allows one arrival per step
			} else {
				st.StepNull()
			}
		}
		for f := range cfg.Rates {
			if _, ok := cfg.Rules.MatchIn(flows.ID(f), st.Contains); ok {
				hits[f]++
			}
		}
		for j := 0; j < cfg.Rules.Len(); j++ {
			if st.Contains(j) {
				cachedCount[j]++
			}
		}
	}
	for f := range cfg.Rates {
		want := m.HitProbability(dT, flows.ID(f))
		got := float64(hits[f]) / trials
		if math.Abs(got-want) > 0.05 {
			t.Errorf("flow %d: simulated hit %.3f vs model %.3f", f, got, want)
		}
	}
	for j := 0; j < cfg.Rules.Len(); j++ {
		want := m.CachedProbability(dT, j)
		got := float64(cachedCount[j]) / trials
		if math.Abs(got-want) > 0.05 {
			t.Errorf("rule %d: simulated cached %.3f vs model %.3f", j, got, want)
		}
	}
}

func TestBasicModelTransitionsMatchStepTable(t *testing.T) {
	// Every chain transition target must be reproducible by the
	// executable StepTable: walk a few states and cross-check the miss
	// and hit transforms.
	cfg := tinyConfig(t)
	m, err := NewBasicModel(cfg, 200000)
	if err != nil {
		t.Fatal(err)
	}
	// From empty, the arrival of f2 (flow 1) must install rule1 (id 1).
	st := flowtable.NewStepTable(cfg.Rules, cfg.CacheSize)
	st.StepArrival(1)
	key := st.Key()
	if _, ok := m.res.Index[key]; !ok {
		t.Fatalf("state %q not reachable in chain", key)
	}
	// Continue: f0 arrival installs rule0.
	st.StepArrival(0)
	if _, ok := m.res.Index[st.Key()]; !ok {
		t.Fatalf("state %q not reachable in chain", st.Key())
	}
}

func TestBasicApplyProbe(t *testing.T) {
	cfg := tinyConfig(t)
	m, err := NewBasicModel(cfg, 200000)
	if err != nil {
		t.Fatal(err)
	}
	d := m.Evolve(m.InitialDist(), 20)
	// After a miss-probe of flow 2, rule2 (id 2) must be cached with
	// certainty on the miss mass.
	_, miss := m.SplitByHit(d, 2)
	missMass := miss.Sum()
	if missMass <= 0 {
		t.Skip("no miss mass at this horizon")
	}
	after := m.ApplyProbe(miss, 2, false)
	if math.Abs(after.Sum()-missMass) > 1e-9 {
		t.Fatalf("probe lost mass: %v → %v", missMass, after.Sum())
	}
	if p := m.CachedProbability(after, 2); math.Abs(p-missMass) > 1e-9 {
		t.Fatalf("rule2 cached mass after install = %v, want %v", p, missMass)
	}
	// Hit-probe must preserve mass and keep the matched rule cached.
	hit, _ := m.SplitByHit(d, 0)
	if hit.Sum() > 0 {
		afterHit := m.ApplyProbe(hit, 0, true)
		if math.Abs(afterHit.Sum()-hit.Sum()) > 1e-9 {
			t.Fatalf("hit probe lost mass")
		}
		if p := m.HitProbability(afterHit, 0); math.Abs(p-hit.Sum()) > 1e-9 {
			t.Fatalf("flow 0 no longer covered after hit refresh: %v", p)
		}
	}
}

func TestBasicSplitByHitPartitions(t *testing.T) {
	cfg := tinyConfig(t)
	m, err := NewBasicModel(cfg, 200000)
	if err != nil {
		t.Fatal(err)
	}
	d := m.Evolve(m.InitialDist(), 25)
	hit, miss := m.SplitByHit(d, 1)
	if math.Abs(hit.Sum()+miss.Sum()-1) > 1e-9 {
		t.Fatalf("partition mass = %v", hit.Sum()+miss.Sum())
	}
	if math.Abs(hit.Sum()-m.HitProbability(d, 1)) > 1e-12 {
		t.Fatal("hit mass disagrees with HitProbability")
	}
}

func TestMergeTransitions(t *testing.T) {
	in := []markov.Transition[string]{{To: "a", P: 0.3}, {To: "b", P: 0.2}, {To: "a", P: 0.5}}
	out := mergeTransitions(in)
	if len(out) != 2 {
		t.Fatalf("merged = %v", out)
	}
	if out[0].To != "a" || math.Abs(out[0].P-0.8) > 1e-15 {
		t.Fatalf("merged = %v", out)
	}
}

func TestEncodeDecodeBasic(t *testing.T) {
	slots := []basicEntry{{rule: 3, exp: 10}, {rule: 0, exp: 2}}
	key := encodeBasic(slots)
	if key != "3:10|0:2" {
		t.Fatalf("key = %q", key)
	}
	back := decodeBasic(key)
	if len(back) != 2 || back[0] != slots[0] || back[1] != slots[1] {
		t.Fatalf("decode = %v", back)
	}
	if decodeBasic("") != nil {
		t.Fatal("empty decode should be nil")
	}
}
