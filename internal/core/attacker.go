package core

import (
	"fmt"

	"flowrecon/internal/flows"
	"flowrecon/internal/stats"
)

// Attacker is a flow-reconnaissance strategy: it plans probe flows, then
// turns observed query outcomes (hit/miss per probe) into a verdict on
// whether the target flow occurred within the window.
type Attacker interface {
	// Name identifies the strategy in reports.
	Name() string
	// Probes returns the flows to probe, in order. It may be empty (the
	// random attacker sends nothing).
	Probes() []flows.ID
	// Decide converts the observed outcomes (outcomes[i] is whether probe
	// i hit) into a verdict: true means "target occurred".
	Decide(outcomes []bool, rng *stats.RNG) bool
}

// LossTolerant is implemented by attackers that can classify a trial in
// which some probes were lost (dropped by the network or timed out).
// lost[i] true means probe i produced no observation at all — outcomes[i]
// is meaningless for that index and must be ignored. A lost probe is an
// explicit "no observation", not a miss: a threshold classifier that
// cannot distinguish the two should fall back to Decide with the lost
// probes classified as misses, which is what the trial runner does for
// attackers that do not implement this interface.
type LossTolerant interface {
	// DecideWithLoss converts partially observed outcomes into a verdict.
	DecideWithLoss(outcomes, lost []bool, rng *stats.RNG) bool
}

// NaiveAttacker is the paper's baseline: probe the target flow itself and
// report the query result Q_f̂.
type NaiveAttacker struct {
	TargetFlow flows.ID
}

var _ Attacker = (*NaiveAttacker)(nil)

// Name implements Attacker.
func (a *NaiveAttacker) Name() string { return "naive" }

// Probes implements Attacker.
func (a *NaiveAttacker) Probes() []flows.ID { return []flows.ID{a.TargetFlow} }

// Decide implements Attacker: the verdict is the raw query outcome.
func (a *NaiveAttacker) Decide(outcomes []bool, _ *stats.RNG) bool {
	return len(outcomes) > 0 && outcomes[0]
}

// DecisionMode selects how a model attacker converts outcomes to verdicts.
type DecisionMode int

// Decision modes.
const (
	// DecideByQuery returns the raw result of the (first) query, the
	// behaviour evaluated in §VI-B ("returning the result of query f").
	DecideByQuery DecisionMode = iota + 1
	// DecideByPosterior thresholds P(X̂=1 | observations) at ½ — the
	// decision-tree leaves of §V-B. For a probe passing the paper's
	// detector-viability filter the two modes agree.
	DecideByPosterior
)

// ModelAttacker probes the flow (or flow sequence) with maximal
// information gain, as computed by a ProbeSelector, and decides per Mode.
type ModelAttacker struct {
	name     string
	mode     DecisionMode
	sel      *ProbeSelector
	eval     SequenceEval
	prior    float64 // P(X̂ = 1)
	singleOK ProbeEval
	isSingle bool
	pacing   Pacing
}

var (
	_ Attacker       = (*ModelAttacker)(nil)
	_ BeliefProvider = (*ModelAttacker)(nil)
	_ LossTolerant   = (*ModelAttacker)(nil)
)

// NewModelAttacker plans numProbes probes from candidates using sel.
// With numProbes == 1 it is the paper's single-query model attacker.
func NewModelAttacker(sel *ProbeSelector, candidates []flows.ID, numProbes int, mode DecisionMode) (*ModelAttacker, error) {
	if numProbes < 1 {
		return nil, fmt.Errorf("core: numProbes %d < 1", numProbes)
	}
	a := &ModelAttacker{
		name:  fmt.Sprintf("model(m=%d)", numProbes),
		mode:  mode,
		sel:   sel,
		prior: 1 - sel.PAbsent(),
	}
	if numProbes == 1 {
		best, ok := sel.Best(candidates)
		if !ok {
			return nil, fmt.Errorf("core: no candidate probes")
		}
		a.singleOK = best
		a.isSingle = true
		a.eval = SequenceEval{Flows: []flows.ID{best.Flow}}
		return a, nil
	}
	best, ok := sel.BestSequence(candidates, numProbes)
	if !ok {
		return nil, fmt.Errorf("core: no candidate probes")
	}
	a.eval = best
	return a, nil
}

// Name implements Attacker.
func (a *ModelAttacker) Name() string { return a.name }

// Rename overrides the attacker's reported name (for rosters that field
// several model attackers, e.g. the §VI-B restricted attacker) and
// returns the attacker for chaining.
func (a *ModelAttacker) Rename(name string) *ModelAttacker {
	a.name = name
	return a
}

// Probes implements Attacker.
func (a *ModelAttacker) Probes() []flows.ID {
	return append([]flows.ID(nil), a.eval.Flows...)
}

// PlannedEval returns the single-probe evaluation (zero value when the
// attacker plans multiple probes).
func (a *ModelAttacker) PlannedEval() ProbeEval { return a.singleOK }

// PlannedSequence returns the planned probe-sequence evaluation (with
// Flows holding the single planned probe when numProbes == 1).
func (a *ModelAttacker) PlannedSequence() SequenceEval { return a.eval }

// Selector implements BeliefProvider.
func (a *ModelAttacker) Selector() *ProbeSelector { return a.sel }

// Decide implements Attacker.
func (a *ModelAttacker) Decide(outcomes []bool, _ *stats.RNG) bool {
	if len(outcomes) == 0 {
		return a.prior > 0.5
	}
	switch a.mode {
	case DecideByQuery:
		return outcomes[0]
	case DecideByPosterior:
		if a.isSingle {
			return a.singleOK.PosteriorPresent(outcomes[0]) > 0.5
		}
		return a.eval.Decide(outcomes)
	default:
		return outcomes[0]
	}
}

// DecideWithLoss implements LossTolerant: lost probes contribute no
// observation. The verdict comes from replaying the observed prefix
// through a fresh belief tracker — Observe for delivered probes,
// ObserveLost for dropped ones — and thresholding the resulting
// posterior P(X̂=1 | delivered observations) at ½. With nothing
// delivered the verdict falls back to the prior; in DecideByQuery mode a
// delivered first probe still decides by its raw outcome (the §VI-B
// behaviour), and only when the first probe is lost does the attacker
// fall back to the posterior over whatever else arrived.
func (a *ModelAttacker) DecideWithLoss(outcomes, lost []bool, rng *stats.RNG) bool {
	anyLost := false
	for i := range outcomes {
		if i < len(lost) && lost[i] {
			anyLost = true
			break
		}
	}
	if !anyLost {
		return a.Decide(outcomes, rng)
	}
	if a.mode == DecideByQuery && len(outcomes) > 0 && !lost[0] {
		return outcomes[0]
	}
	probes := a.eval.Flows
	t := a.sel.NewBeliefTracker()
	delivered := 0
	for i, out := range outcomes {
		if i >= len(probes) {
			break
		}
		if i < len(lost) && lost[i] {
			t.ObserveLost(probes[i])
			continue
		}
		t.Observe(probes[i], out)
		delivered++
	}
	if delivered == 0 {
		return a.prior > 0.5
	}
	return t.Prior() > 0.5
}

// RandomAttacker is the §VI-B baseline that makes no probes and guesses
// from the prior: it declares the flow present with probability
// P(X̂ = 1) = 1 − e^{-λ_f̂·T·Δ}.
type RandomAttacker struct {
	PPresent float64
}

var _ Attacker = (*RandomAttacker)(nil)

// Name implements Attacker.
func (a *RandomAttacker) Name() string { return "random" }

// Probes implements Attacker.
func (a *RandomAttacker) Probes() []flows.ID { return nil }

// Decide implements Attacker.
func (a *RandomAttacker) Decide(_ []bool, rng *stats.RNG) bool {
	return rng.Bernoulli(a.PPresent)
}
