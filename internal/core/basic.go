package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"flowrecon/internal/flows"
	"flowrecon/internal/markov"
	"flowrecon/internal/rules"
)

// basicEntry is one (rule, remaining steps) slot of a basic-model state.
type basicEntry struct {
	rule int
	exp  int
}

// encodeBasic renders a cache state as the canonical key "j:e|j:e|…",
// front slot first.
func encodeBasic(slots []basicEntry) string {
	var b strings.Builder
	for i, e := range slots {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(strconv.Itoa(e.rule))
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(e.exp))
	}
	return b.String()
}

// encode renders slots as a state key, canonicalizing (sorting by rule
// ID) when the model drops cache order.
func (m *BasicModel) encode(slots []basicEntry) string {
	if m.canonical {
		sorted := make([]basicEntry, len(slots))
		copy(sorted, slots)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a].rule < sorted[b].rule })
		return encodeBasic(sorted)
	}
	return encodeBasic(slots)
}

// decodeBasic parses a state key produced by encodeBasic.
func decodeBasic(key string) []basicEntry {
	if key == "" {
		return nil
	}
	parts := strings.Split(key, "|")
	out := make([]basicEntry, len(parts))
	for i, p := range parts {
		colon := strings.IndexByte(p, ':')
		r, _ := strconv.Atoi(p[:colon])
		e, _ := strconv.Atoi(p[colon+1:])
		out[i] = basicEntry{rule: r, exp: e}
	}
	return out
}

// BasicModel is the exact Markov chain of §IV-A: states are ordered cache
// contents with remaining timeouts; transitions are flow arrivals (hit or
// miss+install+evict), timeouts, and the null event.
type BasicModel struct {
	cfg Config
	sr  []float64 // per-step rates λ_f·Δ
	res *markov.ExploreResult[string]
	// frozen is the CSR snapshot of the transition matrix (evolve
	// kernel), compiled lazily on the first Evolve so build-only users
	// (state counting, the ordered-vs-canonical ablation) don't pay for
	// it.
	frozen     *markov.CSR
	freezeOnce sync.Once
	wsPool     sync.Pool
	// ruleMask[i] is the bitmask of rules cached in state i.
	ruleMask []uint64
	// canonical states drop cache order (see NewBasicModelCanonical).
	canonical bool
}

// NewBasicModel explores the state space reachable from the empty cache
// and builds the transition matrix. maxStates bounds the exploration; the
// state count grows as BasicStateCount describes, so callers must keep
// configurations small (the motivation for the compact model).
func NewBasicModel(cfg Config, maxStates int) (*BasicModel, error) {
	return newBasicModel(cfg, maxStates, false)
}

// NewBasicModelCanonical builds the basic model over order-canonicalized
// states: cache order appears in the paper's state definition (the
// |Rules'|! factor of §IV-A2) but match, eviction, and timeout behaviour
// never depend on it, so merging permutations yields an equivalent chain.
// This is the "ordered vs canonical" ablation of DESIGN.md; it shows the
// reachable spaces nearly coincide — the clocks already encode recency, so
// the |Rules'|! permutations the closed form counts are mostly
// unreachable.
func NewBasicModelCanonical(cfg Config, maxStates int) (*BasicModel, error) {
	return newBasicModel(cfg, maxStates, true)
}

func newBasicModel(cfg Config, maxStates int, canonical bool) (*BasicModel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Rules.Len() > 64 {
		return nil, fmt.Errorf("core: basic model supports ≤ 64 rules, got %d", cfg.Rules.Len())
	}
	m := &BasicModel{cfg: cfg, sr: cfg.stepRates(), canonical: canonical}
	res, err := markov.Explore("", m.transitions, maxStates)
	if err != nil {
		return nil, fmt.Errorf("basic model: %w", err)
	}
	m.res = res
	m.ruleMask = make([]uint64, len(res.States))
	for i, key := range res.States {
		var mask uint64
		for _, e := range decodeBasic(key) {
			if e.exp > 0 {
				// A zero-clock rule has reached its expiry boundary; for
				// probing purposes it is already gone (the chain removes
				// it before any other event can occur).
				mask |= 1 << uint(e.rule)
			}
		}
		m.ruleMask[i] = mask
	}
	if err := res.Matrix.CheckStochastic(1e-9); err != nil {
		return nil, err
	}
	n := len(res.States)
	m.wsPool.New = func() any { return markov.NewWorkspace(n) }
	return m, nil
}

// transitions enumerates the successor states of key with normalized
// probabilities, per §IV-A1.
func (m *BasicModel) transitions(key string) []markov.Transition[string] {
	slots := decodeBasic(key)

	// Timeout takes priority: a zero-clock state has exactly one
	// transition, removing the deepest zero-clock rule.
	if idx := deepestZero(slots); idx >= 0 {
		next := make([]basicEntry, 0, len(slots)-1)
		next = append(next, slots[:idx]...)
		next = append(next, slots[idx+1:]...)
		return []markov.Transition[string]{{To: m.encode(next), P: 1}}
	}

	cached := func(j int) bool {
		for _, e := range slots {
			if e.rule == j {
				return true
			}
		}
		return false
	}
	w := computeEventWeights(m.cfg.Rules, m.sr, cached)

	var out []markov.Transition[string]
	total := w.null
	// Null event: all clocks decrement.
	out = append(out, markov.Transition[string]{To: m.encode(decrementAll(slots)), P: w.null})
	for j := 0; j < m.cfg.Rules.Len(); j++ {
		// Emit an event whenever rule j has relevant flows, even at zero
		// rate: the zero-probability edge contributes nothing to the
		// chain but registers the successor state, which ApplyProbe needs
		// when the attacker probes a zero-rate flow (e.g. the target flow
		// in the conditioned chain).
		if w.relFlows[j].Empty() {
			continue
		}
		var next []basicEntry
		if cached(j) {
			next = m.applyHit(slots, j)
		} else {
			next = m.applyMiss(slots, j)
		}
		out = append(out, markov.Transition[string]{To: m.encode(next), P: w.arrival[j]})
		total += w.arrival[j]
	}
	// Normalize (§IV-A1: outgoing probabilities must sum to one).
	for i := range out {
		out[i].P /= total
	}
	return mergeTransitions(out)
}

// deepestZero returns the largest index holding a zero clock, or -1.
func deepestZero(slots []basicEntry) int {
	idx := -1
	for i, e := range slots {
		if e.exp == 0 {
			idx = i
		}
	}
	return idx
}

func decrementAll(slots []basicEntry) []basicEntry {
	out := make([]basicEntry, len(slots))
	for i, e := range slots {
		out[i] = basicEntry{rule: e.rule, exp: e.exp - 1}
	}
	return out
}

// applyHit implements "flow arrival with covering rule in cache" for the
// highest-priority cached rule j covering the arrived flow: j moves to the
// front with a reset clock (idle) or decremented clock (hard); every other
// clock decrements.
func (m *BasicModel) applyHit(slots []basicEntry, j int) []basicEntry {
	r := m.cfg.Rules.Rule(j)
	out := make([]basicEntry, 0, len(slots))
	front := basicEntry{rule: j}
	for _, e := range slots {
		if e.rule == j {
			if r.Kind == rules.HardTimeout {
				front.exp = e.exp - 1
			} else {
				front.exp = r.Timeout
			}
			continue
		}
		out = append(out, basicEntry{rule: e.rule, exp: e.exp - 1})
	}
	return append([]basicEntry{front}, out...)
}

// applyMiss implements "flow arrival with no covering rule in cache": rule
// j installs at the front with a full clock, evicting the smallest
// remaining clock if the cache is at capacity; surviving clocks decrement.
func (m *BasicModel) applyMiss(slots []basicEntry, j int) []basicEntry {
	work := slots
	if len(work) >= m.cfg.CacheSize {
		victim, best := -1, 0
		for i, e := range work {
			if victim < 0 || e.exp < best {
				victim, best = i, e.exp
			}
		}
		trimmed := make([]basicEntry, 0, len(work)-1)
		trimmed = append(trimmed, work[:victim]...)
		trimmed = append(trimmed, work[victim+1:]...)
		work = trimmed
	}
	out := make([]basicEntry, 0, len(work)+1)
	out = append(out, basicEntry{rule: j, exp: m.cfg.Rules.Rule(j).Timeout})
	for _, e := range work {
		out = append(out, basicEntry{rule: e.rule, exp: e.exp - 1})
	}
	return out
}

// mergeTransitions coalesces duplicate targets (two events can map to the
// same successor state).
func mergeTransitions(in []markov.Transition[string]) []markov.Transition[string] {
	seen := make(map[string]int, len(in))
	out := in[:0]
	for _, tr := range in {
		if i, ok := seen[tr.To]; ok {
			out[i].P += tr.P
			continue
		}
		seen[tr.To] = len(out)
		out = append(out, tr)
	}
	return out
}

// NumStates returns the size of the reachable state space.
func (m *BasicModel) NumStates() int { return len(m.res.States) }

// StateMask returns the cached-rule bitmask of state i (rules at their
// expiry boundary count as already evicted, matching HitProbability).
// Together with CompactModel.StateMask it lets conformance checks project
// both chains onto the same observable — which rules are cached — and
// compare them to each other and to empirical table occupancy.
func (m *BasicModel) StateMask(i int) uint64 { return m.ruleMask[i] }

// Matrix returns the transition matrix (for benchmarks and diagnostics).
func (m *BasicModel) Matrix() *markov.Sparse { return m.res.Matrix }

// InitialDist returns the point distribution on the empty cache.
func (m *BasicModel) InitialDist() markov.Dist {
	return markov.PointDist(len(m.res.States), m.res.Index[""])
}

// Evolve advances a state distribution the given number of steps (Eqn 8).
// The input is not modified; the frozen CSR kernel is bit-identical to
// the reference Sparse.Evolve.
func (m *BasicModel) Evolve(d markov.Dist, steps int) markov.Dist {
	out := d.Clone()
	m.EvolveInPlace(out, steps)
	return out
}

// EvolveInPlace advances d in place via a pooled workspace (zero
// allocation once warm). Safe for concurrent use.
func (m *BasicModel) EvolveInPlace(d markov.Dist, steps int) {
	m.freezeOnce.Do(func() { m.frozen = m.res.Matrix.Freeze() })
	ws := m.wsPool.Get().(*markov.Workspace)
	m.frozen.EvolveInPlace(ws, d, steps)
	m.wsPool.Put(ws)
}

// HitProbability returns P(Q_f = 1) under d: the mass of states caching at
// least one rule that covers f.
func (m *BasicModel) HitProbability(d markov.Dist, f flows.ID) float64 {
	var coverMask uint64
	for j := 0; j < m.cfg.Rules.Len(); j++ {
		if m.cfg.Rules.Rule(j).Covers(f) {
			coverMask |= 1 << uint(j)
		}
	}
	return d.MassWhere(func(i int) bool { return m.ruleMask[i]&coverMask != 0 })
}

// CachedProbability returns the probability that rule j is cached under d.
func (m *BasicModel) CachedProbability(d markov.Dist, j int) float64 {
	bit := uint64(1) << uint(j)
	return d.MassWhere(func(i int) bool { return m.ruleMask[i]&bit != 0 })
}

// ModelConfig returns the model's configuration.
func (m *BasicModel) ModelConfig() Config { return m.cfg }

// coverMask returns the bitmask of rules covering f.
func (m *BasicModel) coverMask(f flows.ID) uint64 {
	var cover uint64
	for j := 0; j < m.cfg.Rules.Len(); j++ {
		if m.cfg.Rules.Rule(j).Covers(f) {
			cover |= 1 << uint(j)
		}
	}
	return cover
}

// SplitByHit partitions d by whether probing f hits.
func (m *BasicModel) SplitByHit(d markov.Dist, f flows.ID) (hit, miss markov.Dist) {
	cover := m.coverMask(f)
	hit = make(markov.Dist, len(d))
	miss = make(markov.Dist, len(d))
	for i, p := range d {
		if p == 0 {
			continue
		}
		if m.ruleMask[i]&cover != 0 {
			hit[i] = p
		} else {
			miss[i] = p
		}
	}
	return hit, miss
}

// ApplyProbe implements the probe side effect exactly: a hit moves the
// matched rule to the front with a refreshed clock; a miss installs the
// covering rule, evicting the smallest remaining clock if full. If a
// resulting state lies outside the explored space (possible only for
// zero-rate probe flows whose install transition the chain never takes),
// the mass stays in place as a conservative approximation.
func (m *BasicModel) ApplyProbe(d markov.Dist, f flows.ID, hit bool) markov.Dist {
	out := make(markov.Dist, len(d))
	for i, p := range d {
		if p == 0 {
			continue
		}
		slots := resolveTimeouts(decodeBasic(m.res.States[i]))
		var next []basicEntry
		if hit {
			j, matched := m.matchCached(slots, f)
			if !matched {
				out[i] += p
				continue
			}
			next = m.applyHit(slots, j)
		} else {
			j, covered := m.cfg.Rules.HighestCovering(f)
			if !covered {
				out[i] += p
				continue
			}
			next = m.applyMiss(slots, j)
		}
		if to, ok := m.res.Index[m.encode(next)]; ok {
			out[to] += p
		} else {
			out[i] += p
		}
	}
	return out
}

// resolveTimeouts drops zero-clock entries: the state the chain's pending
// timeout transitions would reach before any probe effect applies.
func resolveTimeouts(slots []basicEntry) []basicEntry {
	out := slots[:0:0]
	for _, e := range slots {
		if e.exp > 0 {
			out = append(out, e)
		}
	}
	return out
}

// matchCached returns the highest-priority cached rule covering f.
func (m *BasicModel) matchCached(slots []basicEntry, f flows.ID) (int, bool) {
	best, bestPrio := -1, 0
	for _, e := range slots {
		r := m.cfg.Rules.Rule(e.rule)
		if r.Covers(f) && (best < 0 || r.Priority > bestPrio) {
			best, bestPrio = e.rule, r.Priority
		}
	}
	return best, best >= 0
}

// BasicStateCount evaluates the closed-form state-space size of §IV-A2:
//
//	Σ_{Rules'⊆Rules, |Rules'|≤n} |Rules'|! · Π_{rule_j∈Rules'} (t_j+1)
//
// using elementary symmetric polynomials, so it runs in O(|Rules|·n). The
// result can far exceed what BFS from the empty cache actually reaches
// (reachable states respect clock/order invariants the formula ignores);
// NewBasicModel reports the reachable count.
func BasicStateCount(timeouts []int, n int) float64 {
	if n > len(timeouts) {
		n = len(timeouts)
	}
	// e[k] = elementary symmetric polynomial of degree k in (t_j + 1).
	e := make([]float64, n+1)
	e[0] = 1
	for _, t := range timeouts {
		x := float64(t + 1)
		for k := n; k >= 1; k-- {
			e[k] += e[k-1] * x
		}
	}
	total, fact := 0.0, 1.0
	for k := 0; k <= n; k++ {
		if k > 0 {
			fact *= float64(k)
		}
		total += fact * e[k]
	}
	return total
}
