package core

// Pacing is a stealth schedule for an attacker's probes. The default
// attacker fires probes back-to-back — pathologically regular from the
// defender's viewpoint. A paced attacker stretches the schedule
// (IntervalSec between probes) and blurs it (uniform jitter up to
// JitterFrac·IntervalSec added per gap) to hide among benign
// inter-arrivals at the cost of a longer reconnaissance window.
type Pacing struct {
	// IntervalSec is the base spacing between consecutive probes, in
	// seconds. Zero disables pacing.
	IntervalSec float64
	// JitterFrac adds U[0, JitterFrac·IntervalSec) to each gap, breaking
	// the constant-gap signature a regularity detector keys on. Typical
	// stealth values are 0.5–1.0.
	JitterFrac float64
}

// Enabled reports whether the pacing schedule is active.
func (p Pacing) Enabled() bool { return p.IntervalSec > 0 }

// Paced is implemented by attackers that request stealth probe pacing
// from the trial runner. Attackers that do not implement it (or return a
// zero Pacing) are scheduled at the runner's default cadence.
type Paced interface {
	ProbePacing() Pacing
}

var _ Paced = (*ModelAttacker)(nil)

// ProbePacing implements Paced.
func (a *ModelAttacker) ProbePacing() Pacing { return a.pacing }

// SetPacing sets the attacker's stealth probe pacing and returns the
// attacker for chaining.
func (a *ModelAttacker) SetPacing(p Pacing) *ModelAttacker {
	a.pacing = p
	return a
}
