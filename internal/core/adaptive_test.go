package core

import (
	"math"
	"testing"

	"flowrecon/internal/flows"
)

// TestAdaptiveTreeGainDominatesSequence: an adaptive plan can always mimic
// the best non-adaptive sequence, so its expected gain must be at least as
// large.
func TestAdaptiveTreeGainDominatesSequence(t *testing.T) {
	cfg := fig2cConfig(t)
	sel := newSelector(t, cfg, 0, 40)
	seq, ok := sel.BestSequence(sel.AllFlows(), 2)
	if !ok {
		t.Fatal("no best sequence")
	}
	root, err := sel.BuildAdaptiveTree(sel.AllFlows(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if g := sel.ExpectedGain(root); g < seq.Gain-1e-12 {
		t.Fatalf("adaptive gain %v < sequence gain %v", g, seq.Gain)
	}
}

// TestAdaptiveDecideEdgeCases covers Decide/NextProbe/PosteriorAfter on
// degenerate inputs: empty outcome slices, outcome vectors longer than the
// tree is deep, and plans that are a single leaf.
func TestAdaptiveDecideEdgeCases(t *testing.T) {
	cfg := fig2cConfig(t)
	sel := newSelector(t, cfg, 0, 40)
	root, err := sel.BuildAdaptiveTree(sel.AllFlows(), 2)
	if err != nil {
		t.Fatal(err)
	}

	// Empty outcomes: the verdict is the root posterior thresholded at ½,
	// i.e. the prior-based guess before any probing.
	wantEmpty := root.PosteriorPresent > 0.5
	if got := root.Decide(nil); got != wantEmpty {
		t.Fatalf("Decide(nil) = %v, want %v", got, wantEmpty)
	}
	if got := root.Decide([]bool{}); got != wantEmpty {
		t.Fatalf("Decide([]) = %v, want %v", got, wantEmpty)
	}
	if got := root.PosteriorAfter(nil); got != root.PosteriorPresent {
		t.Fatalf("PosteriorAfter(nil) = %v, want root posterior %v", got, root.PosteriorPresent)
	}

	// NextProbe with no outcomes returns the root probe.
	f, ok := root.NextProbe(nil)
	if !ok || f != root.Probe {
		t.Fatalf("NextProbe(nil) = %v,%v, want %v,true", f, ok, root.Probe)
	}

	// Outcomes longer than the tree depth: excess observations are ignored;
	// the verdict sticks to the reached leaf and NextProbe reports
	// exhaustion.
	long := []bool{false, true, true, false, true}
	short := long[:2]
	if root.Decide(long) != root.Decide(short) {
		t.Fatal("over-long outcomes changed the verdict")
	}
	if root.PosteriorAfter(long) != root.PosteriorAfter(short) {
		t.Fatal("over-long outcomes changed the posterior")
	}
	if _, ok := root.NextProbe(long); ok {
		t.Fatal("NextProbe beyond the plan depth should report exhaustion")
	}

	// A depth-bounded walk must land on a leaf within the planned depth.
	cur := root
	for range short {
		if cur.Leaf {
			break
		}
		if short[0] {
			cur = cur.Hit
		} else {
			cur = cur.Miss
		}
		short = short[1:]
	}
}

// TestAdaptiveLeafRootTree exercises a plan that is a single leaf: with no
// candidate that adds information (probing the sole flow covered by no rule
// shared with anything else tells us nothing new at depth 0 equivalents),
// the root itself is terminal.
func TestAdaptiveLeafRootTree(t *testing.T) {
	cfg := fig2cConfig(t)
	sel := newSelector(t, cfg, 0, 40)
	root, err := sel.BuildAdaptiveTree(sel.AllFlows(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Synthesize a leaf-root plan (BuildAdaptiveTree produces one whenever
	// no candidate has positive gain; we construct it directly to pin the
	// contract rather than depend on a particular config).
	leaf := &AdaptiveNode{Leaf: true, PosteriorPresent: root.PosteriorPresent, PathProb: 1}

	wantVerdict := leaf.PosteriorPresent > 0.5
	for _, outcomes := range [][]bool{nil, {}, {true}, {false, true, false}} {
		if got := leaf.Decide(outcomes); got != wantVerdict {
			t.Fatalf("leaf Decide(%v) = %v, want %v", outcomes, got, wantVerdict)
		}
		if got := leaf.PosteriorAfter(outcomes); got != leaf.PosteriorPresent {
			t.Fatalf("leaf PosteriorAfter(%v) = %v", outcomes, got)
		}
		if _, ok := leaf.NextProbe(outcomes); ok {
			t.Fatalf("leaf NextProbe(%v) should be exhausted", outcomes)
		}
	}

	// ExpectedGain of a leaf-root plan is zero: no probes, no information.
	if g := sel.ExpectedGain(leaf); g > 1e-12 {
		t.Fatalf("leaf-root expected gain = %v, want 0", g)
	}
}

// TestAdaptiveAttackerSequentialContract: the attacker's Probes() exposes
// only the first probe, with the rest delivered through NextProbe.
func TestAdaptiveAttackerSequentialContract(t *testing.T) {
	cfg := fig2cConfig(t)
	sel := newSelector(t, cfg, 0, 40)
	a, err := NewAdaptiveAttacker(sel, sel.AllFlows(), 2)
	if err != nil {
		t.Fatal(err)
	}
	probes := a.Probes()
	if len(probes) != 1 || probes[0] != a.Tree().Probe {
		t.Fatalf("Probes() = %v, want just the root probe %v", probes, a.Tree().Probe)
	}
	for _, first := range []bool{false, true} {
		f, ok := a.NextProbe([]bool{first})
		child := a.Tree().Miss
		if first {
			child = a.Tree().Hit
		}
		if child.Leaf {
			if ok {
				t.Fatalf("NextProbe after %v: got %v, want exhausted", first, f)
			}
			continue
		}
		if !ok || f != child.Probe {
			t.Fatalf("NextProbe after %v = %v,%v, want %v,true", first, f, ok, child.Probe)
		}
	}
	// Verdicts agree with the tree at every depth-2 outcome vector.
	for _, outcomes := range [][]bool{{false, false}, {false, true}, {true, false}, {true, true}} {
		if a.Decide(outcomes, nil) != a.Tree().Decide(outcomes) {
			t.Fatalf("attacker and tree verdicts diverge at %v", outcomes)
		}
	}
}

// TestAdaptivePathProbsSumToOne: leaf path probabilities of an adaptive
// plan form a distribution.
func TestAdaptivePathProbsSumToOne(t *testing.T) {
	cfg := fig2cConfig(t)
	sel := newSelector(t, cfg, 0, 40)
	root, err := sel.BuildAdaptiveTree(sel.AllFlows(), 3)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	var walk func(n *AdaptiveNode)
	walk = func(n *AdaptiveNode) {
		if n.Leaf {
			sum += n.PathProb
			return
		}
		walk(n.Miss)
		walk(n.Hit)
	}
	walk(root)
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("leaf path probabilities sum to %v", sum)
	}
}

// TestBuildAdaptiveTreeValidation rejects empty candidates and depth < 1.
func TestBuildAdaptiveTreeValidation(t *testing.T) {
	cfg := fig2cConfig(t)
	sel := newSelector(t, cfg, 0, 40)
	if _, err := sel.BuildAdaptiveTree(nil, 2); err == nil {
		t.Fatal("empty candidates should error")
	}
	if _, err := sel.BuildAdaptiveTree([]flows.ID{1}, 0); err == nil {
		t.Fatal("depth 0 should error")
	}
}
