package core

import (
	"fmt"
	"sort"

	"flowrecon/internal/flows"
)

// WindowPoint is one point of a gain-vs-window sweep.
type WindowPoint struct {
	// Steps is the attack window T in model steps.
	Steps int
	// Best is the optimal probe's evaluation at that window.
	Best ProbeEval
	// PAbsent is the target's prior absence probability at that window.
	PAbsent float64
}

// GainVsWindow sweeps the attack window T and reports the optimal probe's
// information gain at each value — an analysis the paper's setup implies
// but does not plot: the side channel only remembers about one rule TTL,
// so the gain collapses as the question reaches further into the past.
// Both model chains are built once and shared across the sweep.
func GainVsWindow(cfg Config, target flows.ID, stepsList []int, params USumParams) ([]WindowPoint, error) {
	if len(stepsList) == 0 {
		return nil, fmt.Errorf("core: empty window list")
	}
	if int(target) < 0 || int(target) >= len(cfg.Rates) {
		return nil, fmt.Errorf("core: target flow %d outside universe", target)
	}
	m, err := CachedCompactModel(cfg, params)
	if err != nil {
		return nil, err
	}
	m0, err := CachedCompactModel(cfg.withoutFlow(target), params)
	if err != nil {
		return nil, err
	}
	windows := append([]int(nil), stepsList...)
	sort.Ints(windows)
	if windows[0] < 1 {
		return nil, fmt.Errorf("core: window must be ≥ 1 step")
	}

	out := make([]WindowPoint, 0, len(windows))
	// One pair of working distributions is evolved in place across the
	// whole sweep; each window's selector borrows (never retains) them,
	// so the per-window Clone pair of the former implementation is gone.
	d, d0 := m.InitialDist(), m0.InitialDist()
	prev := 0
	for _, steps := range windows {
		m.EvolveInPlace(d, steps-prev)
		m0.EvolveInPlace(d0, steps-prev)
		prev = steps
		sel := &ProbeSelector{
			model:   m,
			model0:  m0,
			target:  target,
			steps:   steps,
			pAbsent: absenceAt(cfg, target, steps),
			dist:    d,
			dist0:   d0,
		}
		best, ok := sel.Best(sel.AllFlows())
		if !ok {
			return nil, fmt.Errorf("core: no probe candidates")
		}
		out = append(out, WindowPoint{Steps: steps, Best: best, PAbsent: sel.pAbsent})
	}
	return out, nil
}

func absenceAt(cfg Config, target flows.ID, steps int) float64 {
	return expNegProduct(cfg.Rates[target], cfg.Delta, steps)
}

func expNegProduct(rate, delta float64, steps int) float64 {
	return clampExp(-rate * delta * float64(steps))
}
