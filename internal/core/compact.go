package core

import (
	"fmt"
	"math"
	"math/bits"

	"flowrecon/internal/flows"
	"flowrecon/internal/markov"
)

// Model is the interface probe selection needs from a switch model. Both
// BasicModel and CompactModel implement it.
type Model interface {
	// NumStates returns the model's state-space size.
	NumStates() int
	// InitialDist returns the distribution for an initially empty cache.
	InitialDist() markov.Dist
	// Evolve advances a distribution the given number of Δ-steps (Eqn 8).
	Evolve(d markov.Dist, steps int) markov.Dist
	// HitProbability returns the mass of states in which a probe of f
	// would hit (some cached rule covers f).
	HitProbability(d markov.Dist, f flows.ID) float64
	// SplitByHit partitions d's mass into the states where probing f hits
	// and the states where it misses. The halves are unnormalized.
	SplitByHit(d markov.Dist, f flows.ID) (hit, miss markov.Dist)
	// ApplyProbe transforms a distribution by the cache side effect of a
	// probe of f with the given outcome: a miss installs the covering
	// rule (evicting if full); a hit refreshes the matched rule.
	ApplyProbe(d markov.Dist, f flows.ID, hit bool) markov.Dist
	// ModelConfig returns the model's configuration.
	ModelConfig() Config
}

var (
	_ Model = (*CompactModel)(nil)
	_ Model = (*BasicModel)(nil)
)

// CompactModel is the approximate Markov chain of §IV-B: a state is the
// subset of rules presently cached (at most the cache capacity), and
// eviction/timeout transition probabilities are estimated from the
// most-recent-match sums implemented in usum.go.
type CompactModel struct {
	cfg    Config
	sr     []float64
	states []uint64       // rule bitmasks, index-aligned with the matrix
	index  map[uint64]int // mask → state index
	matrix *markov.Sparse
	est    []StateEstimates // per-state §IV-B estimates (nil for the empty state)
	params USumParams
	// exactStates counts states whose u-sums were enumerated exactly.
	exactStates int
}

// NewCompactModel enumerates every subset state and builds the transition
// matrix. params tunes the u-sum estimator; pass DefaultUSumParams() unless
// benchmarking the estimator itself.
func NewCompactModel(cfg Config, params USumParams) (*CompactModel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nr := cfg.Rules.Len()
	if nr > 24 {
		return nil, fmt.Errorf("core: compact model supports ≤ 24 rules, got %d", nr)
	}
	m := &CompactModel{cfg: cfg, sr: cfg.stepRates(), params: params}
	m.enumerateStates()
	if err := m.buildMatrix(); err != nil {
		return nil, err
	}
	return m, nil
}

// CompactStateCount evaluates the §IV-B state count
// Σ_{n'=0..n} C(|Rules|, n'), including the empty state.
func CompactStateCount(numRules, capacity int) int {
	if capacity > numRules {
		capacity = numRules
	}
	total := 0
	c := 1 // C(numRules, 0)
	for k := 0; k <= capacity; k++ {
		total += c
		c = c * (numRules - k) / (k + 1)
	}
	return total
}

func (m *CompactModel) enumerateStates() {
	nr := m.cfg.Rules.Len()
	cap := m.cfg.CacheSize
	if cap > nr {
		cap = nr
	}
	m.index = make(map[uint64]int, CompactStateCount(nr, cap))
	add := func(mask uint64) {
		m.index[mask] = len(m.states)
		m.states = append(m.states, mask)
	}
	// Enumerate subsets in increasing size so the empty state is index 0.
	var rec func(start int, mask uint64, size, want int)
	rec = func(start int, mask uint64, size, want int) {
		if size == want {
			add(mask)
			return
		}
		for j := start; j < nr; j++ {
			rec(j+1, mask|1<<uint(j), size+1, want)
		}
	}
	for want := 0; want <= cap; want++ {
		rec(0, 0, 0, want)
	}
}

func (m *CompactModel) buildMatrix() error {
	m.matrix = markov.NewSparse(len(m.states))
	m.est = make([]StateEstimates, len(m.states))
	estimator := &uEstimator{rs: m.cfg.Rules, sr: m.sr, capacity: m.cfg.CacheSize, params: m.params}

	for idx, mask := range m.states {
		cachedIDs := maskIDs(mask)
		cached := func(j int) bool { return mask&(1<<uint(j)) != 0 }
		w := computeEventWeights(m.cfg.Rules, m.sr, cached)

		var est StateEstimates
		if len(cachedIDs) > 0 {
			est = estimator.estimate(cachedIDs)
			m.est[idx] = est
			if est.Exact {
				m.exactStates++
			}
		}

		// Null event: per-rule timeouts plus the stay-put remainder.
		var timeoutTotal float64
		for _, j := range cachedIDs {
			timeoutTotal += est.Timeout[j]
		}
		if timeoutTotal > 1 {
			// Conditional probabilities can overshoot jointly; rescale so
			// the null event stays a probability split.
			for _, j := range cachedIDs {
				m.matrix.Add(idx, m.index[mask&^(1<<uint(j))], w.null*est.Timeout[j]/timeoutTotal)
			}
		} else {
			for _, j := range cachedIDs {
				m.matrix.Add(idx, m.index[mask&^(1<<uint(j))], w.null*est.Timeout[j])
			}
			m.matrix.Add(idx, idx, w.null*(1-timeoutTotal))
		}

		// Arrival events.
		for j := 0; j < m.cfg.Rules.Len(); j++ {
			p := w.arrival[j]
			if p <= 0 {
				continue
			}
			switch {
			case cached(j):
				m.matrix.Add(idx, idx, p) // hit: subset unchanged
			case len(cachedIDs) < m.cfg.CacheSize:
				m.matrix.Add(idx, m.index[mask|1<<uint(j)], p)
			default:
				for _, v := range cachedIDs {
					to := (mask | 1<<uint(j)) &^ (1 << uint(v))
					m.matrix.Add(idx, m.index[to], p*est.Evict[v])
				}
			}
		}
	}
	m.matrix.NormalizeRows()
	return m.matrix.CheckStochastic(1e-9)
}

func maskIDs(mask uint64) []int {
	out := make([]int, 0, bits.OnesCount64(mask))
	for mask != 0 {
		b := bits.TrailingZeros64(mask)
		out = append(out, b)
		mask &^= 1 << uint(b)
	}
	return out
}

// NumStates returns the state-space size (Σ C(|Rules|, k), k ≤ n).
func (m *CompactModel) NumStates() int { return len(m.states) }

// ExactStateFraction reports the fraction of non-empty states whose u-sums
// were enumerated exactly rather than sampled.
func (m *CompactModel) ExactStateFraction() float64 {
	nonEmpty := len(m.states) - 1
	if nonEmpty <= 0 {
		return 1
	}
	return float64(m.exactStates) / float64(nonEmpty)
}

// Matrix exposes the transition matrix for diagnostics and benchmarks.
func (m *CompactModel) Matrix() *markov.Sparse { return m.matrix }

// ModelConfig returns the model's configuration.
func (m *CompactModel) ModelConfig() Config { return m.cfg }

// StateMask returns the cached-rule bitmask of state i.
func (m *CompactModel) StateMask(i int) uint64 { return m.states[i] }

// Estimates returns the §IV-B estimates of state i (zero value for the
// empty state).
func (m *CompactModel) Estimates(i int) StateEstimates { return m.est[i] }

// InitialDist returns the point distribution on the empty cache.
func (m *CompactModel) InitialDist() markov.Dist {
	return markov.PointDist(len(m.states), m.index[0])
}

// Evolve advances a distribution the given number of steps (Eqn 8).
func (m *CompactModel) Evolve(d markov.Dist, steps int) markov.Dist {
	return m.matrix.Evolve(d, steps)
}

// coverMask returns the bitmask of rules covering f.
func (m *CompactModel) coverMask(f flows.ID) uint64 {
	var cover uint64
	for j := 0; j < m.cfg.Rules.Len(); j++ {
		if m.cfg.Rules.Rule(j).Covers(f) {
			cover |= 1 << uint(j)
		}
	}
	return cover
}

// HitProbability returns P(Q_f = 1) under d.
func (m *CompactModel) HitProbability(d markov.Dist, f flows.ID) float64 {
	cover := m.coverMask(f)
	return d.MassWhere(func(i int) bool { return m.states[i]&cover != 0 })
}

// CachedProbability returns P(rule j ∈ cache) under d.
func (m *CompactModel) CachedProbability(d markov.Dist, j int) float64 {
	bit := uint64(1) << uint(j)
	return d.MassWhere(func(i int) bool { return m.states[i]&bit != 0 })
}

// SplitByHit partitions d by whether probing f hits.
func (m *CompactModel) SplitByHit(d markov.Dist, f flows.ID) (hit, miss markov.Dist) {
	cover := m.coverMask(f)
	hit = make(markov.Dist, len(d))
	miss = make(markov.Dist, len(d))
	for i, p := range d {
		if p == 0 {
			continue
		}
		if m.states[i]&cover != 0 {
			hit[i] = p
		} else {
			miss[i] = p
		}
	}
	return hit, miss
}

// ApplyProbe implements the §V-B state update for one probe: a hit leaves
// the subset unchanged (it only refreshes a clock the compact model does
// not carry); a miss installs the highest-priority rule covering f,
// splitting mass across evictions when the table is full.
func (m *CompactModel) ApplyProbe(d markov.Dist, f flows.ID, hit bool) markov.Dist {
	if hit {
		return d.Clone()
	}
	jStar, ok := m.cfg.Rules.HighestCovering(f)
	if !ok {
		return d.Clone() // probe of an uncovered flow cannot install anything
	}
	out := make(markov.Dist, len(d))
	bit := uint64(1) << uint(jStar)
	for i, p := range d {
		if p == 0 {
			continue
		}
		mask := m.states[i]
		if mask&bit != 0 {
			out[i] += p // already cached (possible when called on hit-mass)
			continue
		}
		cachedIDs := maskIDs(mask)
		if len(cachedIDs) < m.cfg.CacheSize {
			out[m.index[mask|bit]] += p
			continue
		}
		est := m.est[i]
		for _, v := range cachedIDs {
			to := (mask | bit) &^ (1 << uint(v))
			out[m.index[to]] += p * est.Evict[v]
		}
	}
	return out
}

// SteadyState iterates the chain from the empty cache until the
// distribution moves less than tol in L1, returning the (approximate)
// stationary distribution and the number of steps taken.
func (m *CompactModel) SteadyState(tol float64, maxSteps int) (markov.Dist, int) {
	d := m.InitialDist()
	for s := 1; s <= maxSteps; s++ {
		next := m.matrix.Apply(d)
		var l1 float64
		for i := range next {
			l1 += math.Abs(next[i] - d[i])
		}
		d = next
		if l1 < tol {
			return d, s
		}
	}
	return d, maxSteps
}
