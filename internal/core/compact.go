package core

import (
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"flowrecon/internal/flows"
	"flowrecon/internal/markov"
)

// Model is the interface probe selection needs from a switch model. Both
// BasicModel and CompactModel implement it.
type Model interface {
	// NumStates returns the model's state-space size.
	NumStates() int
	// InitialDist returns the distribution for an initially empty cache.
	InitialDist() markov.Dist
	// Evolve advances a distribution the given number of Δ-steps (Eqn 8).
	Evolve(d markov.Dist, steps int) markov.Dist
	// HitProbability returns the mass of states in which a probe of f
	// would hit (some cached rule covers f).
	HitProbability(d markov.Dist, f flows.ID) float64
	// SplitByHit partitions d's mass into the states where probing f hits
	// and the states where it misses. The halves are unnormalized.
	SplitByHit(d markov.Dist, f flows.ID) (hit, miss markov.Dist)
	// ApplyProbe transforms a distribution by the cache side effect of a
	// probe of f with the given outcome: a miss installs the covering
	// rule (evicting if full); a hit refreshes the matched rule.
	ApplyProbe(d markov.Dist, f flows.ID, hit bool) markov.Dist
	// ModelConfig returns the model's configuration.
	ModelConfig() Config
}

var (
	_ Model = (*CompactModel)(nil)
	_ Model = (*BasicModel)(nil)
)

// CompactModel is the approximate Markov chain of §IV-B: a state is the
// subset of rules presently cached (at most the cache capacity), and
// eviction/timeout transition probabilities are estimated from the
// most-recent-match sums implemented in usum.go.
type CompactModel struct {
	cfg    Config
	sr     []float64
	states []uint64       // rule bitmasks, index-aligned with the matrix
	index  map[uint64]int // mask → state index
	matrix *markov.Sparse
	frozen *markov.CSR      // immutable CSR snapshot driving Evolve/SteadyState
	wsPool sync.Pool        // *markov.Workspace, per-goroutine evolve scratch
	est    []StateEstimates // per-state §IV-B estimates (nil for the empty state)
	params USumParams
	// exactStates counts states whose u-sums were enumerated exactly.
	exactStates int
}

// NewCompactModel enumerates every subset state and builds the transition
// matrix, fanning the per-state u-sum estimation across GOMAXPROCS
// workers. params tunes the u-sum estimator; pass DefaultUSumParams()
// unless benchmarking the estimator itself.
func NewCompactModel(cfg Config, params USumParams) (*CompactModel, error) {
	return NewCompactModelWorkers(cfg, params, 0)
}

// NewCompactModelWorkers is NewCompactModel with an explicit build
// worker count (≤ 0 selects GOMAXPROCS). Per-state rows are computed on
// the pool and assembled in state order, so the resulting model is
// bit-identical regardless of the worker count: the only cross-state
// coupling is the u-sum memo, whose entries are pure functions of their
// keys.
func NewCompactModelWorkers(cfg Config, params USumParams, workers int) (*CompactModel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nr := cfg.Rules.Len()
	if nr > 24 {
		return nil, fmt.Errorf("core: compact model supports ≤ 24 rules, got %d", nr)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	m := &CompactModel{cfg: cfg, sr: cfg.stepRates(), params: params}
	m.enumerateStates()
	if err := m.buildMatrix(workers); err != nil {
		return nil, err
	}
	m.frozen = m.matrix.Freeze()
	n := len(m.states)
	m.wsPool.New = func() any { return markov.NewWorkspace(n) }
	obsBuild(float64(time.Since(start).Nanoseconds())/1e6, workers)
	return m, nil
}

// MemBytes estimates the model's resident heap footprint: state masks,
// the mask index, per-state estimates, and both matrix forms. Map
// overhead is approximated, so treat the figure as a cache byte-budget
// accounting unit, not exact process RSS.
func (m *CompactModel) MemBytes() int64 {
	const mapEntry = 48 // rough per-entry bucket + key + value cost
	b := int64(len(m.states))*8 + int64(len(m.sr))*8
	b += int64(len(m.index)) * mapEntry
	for i := range m.est {
		b += int64(len(m.est[i].Evict)+len(m.est[i].Timeout))*mapEntry + 64
	}
	if m.frozen != nil {
		b += m.frozen.MemBytes()
	}
	if m.matrix != nil {
		b += int64(m.matrix.NNZ()) * 16 // builder edges {to, p}
	}
	return b
}

// CompactStateCount evaluates the §IV-B state count
// Σ_{n'=0..n} C(|Rules|, n'), including the empty state.
func CompactStateCount(numRules, capacity int) int {
	if capacity > numRules {
		capacity = numRules
	}
	total := 0
	c := 1 // C(numRules, 0)
	for k := 0; k <= capacity; k++ {
		total += c
		c = c * (numRules - k) / (k + 1)
	}
	return total
}

func (m *CompactModel) enumerateStates() {
	nr := m.cfg.Rules.Len()
	cap := m.cfg.CacheSize
	if cap > nr {
		cap = nr
	}
	m.index = make(map[uint64]int, CompactStateCount(nr, cap))
	add := func(mask uint64) {
		m.index[mask] = len(m.states)
		m.states = append(m.states, mask)
	}
	// Enumerate subsets in increasing size so the empty state is index 0.
	var rec func(start int, mask uint64, size, want int)
	rec = func(start int, mask uint64, size, want int) {
		if size == want {
			add(mask)
			return
		}
		for j := start; j < nr; j++ {
			rec(j+1, mask|1<<uint(j), size+1, want)
		}
	}
	for want := 0; want <= cap; want++ {
		rec(0, 0, 0, want)
	}
}

// builtRow is the output of one state's independent row computation.
type builtRow struct {
	est    StateEstimates
	hasEst bool
	tos    []int
	ps     []float64
}

// buildRow computes state idx's estimates and unnormalized row entries.
// It touches only immutable model fields (states, index, cfg, sr) plus
// the caller-owned estimator, so rows can be built concurrently.
func (m *CompactModel) buildRow(estimator *uEstimator, idx int) builtRow {
	mask := m.states[idx]
	cachedIDs := maskIDs(mask)
	cached := func(j int) bool { return mask&(1<<uint(j)) != 0 }
	w := computeEventWeights(m.cfg.Rules, m.sr, cached)

	var row builtRow
	add := func(to int, p float64) {
		row.tos = append(row.tos, to)
		row.ps = append(row.ps, p)
	}
	est := row.est
	if len(cachedIDs) > 0 {
		est = estimator.estimate(cachedIDs)
		row.est = est
		row.hasEst = true
	}

	// Null event: per-rule timeouts plus the stay-put remainder.
	var timeoutTotal float64
	for _, j := range cachedIDs {
		timeoutTotal += est.Timeout[j]
	}
	if timeoutTotal > 1 {
		// Conditional probabilities can overshoot jointly; rescale so
		// the null event stays a probability split.
		for _, j := range cachedIDs {
			add(m.index[mask&^(1<<uint(j))], w.null*est.Timeout[j]/timeoutTotal)
		}
	} else {
		for _, j := range cachedIDs {
			add(m.index[mask&^(1<<uint(j))], w.null*est.Timeout[j])
		}
		add(idx, w.null*(1-timeoutTotal))
	}

	// Arrival events.
	for j := 0; j < m.cfg.Rules.Len(); j++ {
		p := w.arrival[j]
		if p <= 0 {
			continue
		}
		switch {
		case cached(j):
			add(idx, p) // hit: subset unchanged
		case len(cachedIDs) < m.cfg.CacheSize:
			add(m.index[mask|1<<uint(j)], p)
		default:
			for _, v := range cachedIDs {
				to := (mask | 1<<uint(j)) &^ (1 << uint(v))
				add(m.index[to], p*est.Evict[v])
			}
		}
	}
	return row
}

// buildMatrix computes every state's row — the u-sum estimation is the
// §VI hot path — on a pool of workers, then assembles the sparse matrix
// serially in state order so the result is independent of scheduling.
func (m *CompactModel) buildMatrix(workers int) error {
	n := len(m.states)
	m.est = make([]StateEstimates, n)
	rows := make([]builtRow, n)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		estimator := &uEstimator{rs: m.cfg.Rules, sr: m.sr, capacity: m.cfg.CacheSize, params: m.params}
		for idx := range m.states {
			rows[idx] = m.buildRow(estimator, idx)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				estimator := &uEstimator{rs: m.cfg.Rules, sr: m.sr, capacity: m.cfg.CacheSize, params: m.params}
				for {
					idx := int(next.Add(1)) - 1
					if idx >= n {
						return
					}
					rows[idx] = m.buildRow(estimator, idx)
				}
			}()
		}
		wg.Wait()
	}

	// Deterministic in-order assembly.
	m.matrix = markov.NewSparse(n)
	for idx := range rows {
		if rows[idx].hasEst {
			m.est[idx] = rows[idx].est
			if rows[idx].est.Exact {
				m.exactStates++
			}
		}
		for k, to := range rows[idx].tos {
			m.matrix.Add(idx, to, rows[idx].ps[k])
		}
	}
	m.matrix.NormalizeRows()
	return m.matrix.CheckStochastic(1e-9)
}

func maskIDs(mask uint64) []int {
	out := make([]int, 0, bits.OnesCount64(mask))
	for mask != 0 {
		b := bits.TrailingZeros64(mask)
		out = append(out, b)
		mask &^= 1 << uint(b)
	}
	return out
}

// NumStates returns the state-space size (Σ C(|Rules|, k), k ≤ n).
func (m *CompactModel) NumStates() int { return len(m.states) }

// ExactStateFraction reports the fraction of non-empty states whose u-sums
// were enumerated exactly rather than sampled.
func (m *CompactModel) ExactStateFraction() float64 {
	nonEmpty := len(m.states) - 1
	if nonEmpty <= 0 {
		return 1
	}
	return float64(m.exactStates) / float64(nonEmpty)
}

// Matrix exposes the transition matrix for diagnostics and benchmarks.
func (m *CompactModel) Matrix() *markov.Sparse { return m.matrix }

// ModelConfig returns the model's configuration.
func (m *CompactModel) ModelConfig() Config { return m.cfg }

// StateMask returns the cached-rule bitmask of state i.
func (m *CompactModel) StateMask(i int) uint64 { return m.states[i] }

// Estimates returns the §IV-B estimates of state i (zero value for the
// empty state).
func (m *CompactModel) Estimates(i int) StateEstimates { return m.est[i] }

// InitialDist returns the point distribution on the empty cache.
func (m *CompactModel) InitialDist() markov.Dist {
	return markov.PointDist(len(m.states), m.index[0])
}

// Evolve advances a distribution the given number of steps (Eqn 8). The
// input is not modified. The frozen CSR kernel keeps the result
// bit-identical to the reference Sparse.Evolve while avoiding its
// per-step allocation and full-space scans.
func (m *CompactModel) Evolve(d markov.Dist, steps int) markov.Dist {
	out := d.Clone()
	m.EvolveInPlace(out, steps)
	return out
}

// EvolveInPlace advances d in place by steps, using a pooled workspace
// so repeated calls (probe sweeps, per-trial model pushes) allocate
// nothing. Safe for concurrent use; each call draws its own workspace.
func (m *CompactModel) EvolveInPlace(d markov.Dist, steps int) {
	var start time.Time
	instrumented := evolveInstrumented()
	if instrumented {
		start = time.Now()
	}
	ws := m.wsPool.Get().(*markov.Workspace)
	m.frozen.EvolveInPlace(ws, d, steps)
	m.wsPool.Put(ws)
	if instrumented {
		obsEvolve(float64(time.Since(start).Nanoseconds()))
	}
}

// Frozen exposes the CSR kernel for diagnostics and benchmarks.
func (m *CompactModel) Frozen() *markov.CSR { return m.frozen }

// coverMask returns the bitmask of rules covering f.
func (m *CompactModel) coverMask(f flows.ID) uint64 {
	var cover uint64
	for j := 0; j < m.cfg.Rules.Len(); j++ {
		if m.cfg.Rules.Rule(j).Covers(f) {
			cover |= 1 << uint(j)
		}
	}
	return cover
}

// HitProbability returns P(Q_f = 1) under d.
func (m *CompactModel) HitProbability(d markov.Dist, f flows.ID) float64 {
	cover := m.coverMask(f)
	return d.MassWhere(func(i int) bool { return m.states[i]&cover != 0 })
}

// CachedProbability returns P(rule j ∈ cache) under d.
func (m *CompactModel) CachedProbability(d markov.Dist, j int) float64 {
	bit := uint64(1) << uint(j)
	return d.MassWhere(func(i int) bool { return m.states[i]&bit != 0 })
}

// SplitByHit partitions d by whether probing f hits.
func (m *CompactModel) SplitByHit(d markov.Dist, f flows.ID) (hit, miss markov.Dist) {
	hit = make(markov.Dist, len(d))
	miss = make(markov.Dist, len(d))
	m.SplitByHitInto(d, f, hit, miss)
	return hit, miss
}

// SplitByHitInto is SplitByHit writing into caller-provided buffers,
// which are fully overwritten. Used by the allocation-free sequence
// evaluation.
func (m *CompactModel) SplitByHitInto(d markov.Dist, f flows.ID, hit, miss markov.Dist) {
	cover := m.coverMask(f)
	clear(hit)
	clear(miss)
	for i, p := range d {
		if p == 0 {
			continue
		}
		if m.states[i]&cover != 0 {
			hit[i] = p
		} else {
			miss[i] = p
		}
	}
}

// ApplyProbe implements the §V-B state update for one probe: a hit leaves
// the subset unchanged (it only refreshes a clock the compact model does
// not carry); a miss installs the highest-priority rule covering f,
// splitting mass across evictions when the table is full.
func (m *CompactModel) ApplyProbe(d markov.Dist, f flows.ID, hit bool) markov.Dist {
	out := make(markov.Dist, len(d))
	m.ApplyProbeInto(out, d, f, hit)
	return out
}

// ApplyProbeInto is ApplyProbe writing into dst, which is fully
// overwritten and must not alias d. The eviction fan-out iterates mask
// bits directly, so the per-state maskIDs allocation of the former
// implementation is gone.
func (m *CompactModel) ApplyProbeInto(dst, d markov.Dist, f flows.ID, hit bool) {
	if hit {
		copy(dst, d)
		return
	}
	jStar, ok := m.cfg.Rules.HighestCovering(f)
	if !ok {
		copy(dst, d) // probe of an uncovered flow cannot install anything
		return
	}
	clear(dst)
	bit := uint64(1) << uint(jStar)
	for i, p := range d {
		if p == 0 {
			continue
		}
		mask := m.states[i]
		if mask&bit != 0 {
			dst[i] += p // already cached (possible when called on hit-mass)
			continue
		}
		if bits.OnesCount64(mask) < m.cfg.CacheSize {
			dst[m.index[mask|bit]] += p
			continue
		}
		est := m.est[i]
		for rem := mask; rem != 0; {
			v := bits.TrailingZeros64(rem)
			rem &^= 1 << uint(v)
			to := (mask | bit) &^ (1 << uint(v))
			dst[m.index[to]] += p * est.Evict[v]
		}
	}
}

// SteadyState iterates the chain from the empty cache until the
// distribution moves less than tol in L1, returning the (approximate)
// stationary distribution and the number of steps taken.
func (m *CompactModel) SteadyState(tol float64, maxSteps int) (markov.Dist, int) {
	d := m.InitialDist()
	next := make(markov.Dist, len(d))
	for s := 1; s <= maxSteps; s++ {
		m.frozen.ApplyInto(next, d)
		var l1 float64
		for i := range next {
			l1 += math.Abs(next[i] - d[i])
		}
		d, next = next, d
		if l1 < tol {
			return d, s
		}
	}
	return d, maxSteps
}
