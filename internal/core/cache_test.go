package core

import (
	"sync"
	"testing"
)

// cacheConfigs returns n distinct tiny configs (rate-perturbed so each
// hashes to a different ConfigKey).
func cacheConfigs(t *testing.T, n int) []Config {
	t.Helper()
	out := make([]Config, n)
	for i := range out {
		cfg := tinyConfig(t)
		rates := append([]float64(nil), cfg.Rates...)
		rates[0] += float64(i) * 0.001
		cfg.Rates = rates
		out[i] = cfg
	}
	return out
}

func TestModelCacheSingleflight(t *testing.T) {
	c := NewModelCache(4)
	cfg := tinyConfig(t)
	params := DefaultUSumParams()
	const goroutines = 16
	models := make([]*CompactModel, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := c.Get(cfg, params)
			if err != nil {
				t.Error(err)
				return
			}
			models[i] = m
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if models[i] != models[0] {
			t.Fatalf("goroutine %d got a distinct model: singleflight failed", i)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != goroutines-1 {
		t.Fatalf("hits/misses = %d/%d, want %d/1", st.Hits, st.Misses, goroutines-1)
	}
	if st.Entries != 1 || st.Bytes <= 0 {
		t.Fatalf("entries=%d bytes=%d, want 1 resident entry with accounted bytes", st.Entries, st.Bytes)
	}
}

func TestModelCacheLRUEviction(t *testing.T) {
	c := NewModelCache(2)
	params := DefaultUSumParams()
	cfgs := cacheConfigs(t, 3)
	for _, cfg := range cfgs[:2] {
		if _, err := c.Get(cfg, params); err != nil {
			t.Fatal(err)
		}
	}
	// Touch cfg0 so cfg1 becomes the LRU tail, then insert cfg2.
	if _, err := c.Get(cfgs[0], params); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(cfgs[2], params); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("entries=%d evictions=%d, want 2/1", st.Entries, st.Evictions)
	}
	// cfg0 must still be resident (a hit); cfg1 was evicted (a miss).
	before := c.Stats()
	if _, err := c.Get(cfgs[0], params); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != before.Hits+1 {
		t.Fatal("recently-used entry was evicted instead of the LRU tail")
	}
	if _, err := c.Get(cfgs[1], params); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Misses != before.Misses+1 {
		t.Fatal("LRU-tail entry survived past capacity")
	}
}

func TestModelCacheByteBudget(t *testing.T) {
	c := NewModelCache(100)
	params := DefaultUSumParams()
	cfgs := cacheConfigs(t, 3)
	m, err := c.Get(cfgs[0], params)
	if err != nil {
		t.Fatal(err)
	}
	per := m.MemBytes()
	if per <= 0 {
		t.Fatalf("MemBytes = %d, want > 0", per)
	}
	// Budget for two models: inserting a third must evict the oldest.
	c.SetMaxBytes(2 * per)
	for _, cfg := range cfgs[1:] {
		if _, err := c.Get(cfg, params); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("entries=%d evictions=%d under byte budget, want 2/1", st.Entries, st.Evictions)
	}
	if st.Bytes > st.MaxBytes {
		t.Fatalf("resident bytes %d exceed budget %d", st.Bytes, st.MaxBytes)
	}
	// Shrinking the budget below one model must still keep the MRU entry.
	c.SetMaxBytes(per / 2)
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("entries=%d after shrink, want the single MRU survivor", st.Entries)
	}
}

func TestModelCacheResetClearsStats(t *testing.T) {
	c := NewModelCache(4)
	if _, err := c.Get(tinyConfig(t), DefaultUSumParams()); err != nil {
		t.Fatal(err)
	}
	c.Reset()
	st := c.Stats()
	if st.Entries != 0 || st.Bytes != 0 || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("Reset left state behind: %+v", st)
	}
}

func TestModelCacheExplicitWorkers(t *testing.T) {
	c := NewModelCache(4)
	c.SetBuildWorkers(1)
	serial, err := c.Get(tinyConfig(t), DefaultUSumParams())
	if err != nil {
		t.Fatal(err)
	}
	reference, err := NewCompactModelWorkers(tinyConfig(t), DefaultUSumParams(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if serial.NumStates() != reference.NumStates() {
		t.Fatal("worker-count override changed the model")
	}
}
