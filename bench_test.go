// Benchmarks regenerating every table and figure of the paper's evaluation
// (§VI), plus ablations of the design choices called out in DESIGN.md.
// Figure benchmarks run at a reduced scale so `go test -bench=.` finishes
// on a laptop; cmd/experiments runs the paper-scale versions.
//
// Custom metrics: accuracy values are reported via b.ReportMetric so the
// bench output doubles as a shape check against the paper (see
// EXPERIMENTS.md).
package flowrecon_test

import (
	"bytes"
	"io"
	"strconv"
	"testing"
	"time"

	"flowrecon/internal/controller"
	"flowrecon/internal/core"
	"flowrecon/internal/detect"
	"flowrecon/internal/experiment"
	"flowrecon/internal/flows"
	"flowrecon/internal/flowtable"
	"flowrecon/internal/ingest"
	"flowrecon/internal/netsim"
	"flowrecon/internal/rules"
	"flowrecon/internal/stats"
	"flowrecon/internal/telemetry"
	"flowrecon/internal/trialrec"
)

// benchParams is the reduced §VI-A configuration used by the figure
// benchmarks: 8 flows, 6 of 27 candidate rules, cache 3, 5 s window.
func benchParams() experiment.Params {
	return experiment.Params{
		NumFlows:      8,
		NumRules:      6,
		MaskBits:      3,
		CacheSize:     3,
		Delta:         0.05,
		WindowSeconds: 5,
		USum:          core.USumParams{ExactLimit: 20000, MCSamples: 600, Seed: 1},
		AbsenceLo:     0.02,
		AbsenceHi:     0.98,
	}
}

// benchCoreConfig is a mid-sized model configuration for the model-level
// benchmarks.
func benchCoreConfig(b *testing.B) core.Config {
	b.Helper()
	rs, err := rules.Generate(rules.GenerateConfig{
		NumFlows: 8, NumRules: 6, MaskBits: 3,
		Timeouts: []int{2, 4, 6, 8, 10},
	}, stats.NewRNG(3))
	if err != nil {
		b.Fatal(err)
	}
	return core.Config{
		Rules:     rs,
		Rates:     workloadRates(8, 4),
		Delta:     0.05,
		CacheSize: 3,
	}
}

func workloadRates(n int, seed int64) []float64 {
	rng := stats.NewRNG(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Float64()
	}
	return out
}

// BenchmarkStateCount evaluates the §IV-A2 closed form at the paper's
// example parameters (|Rules|=10, t=100, n=8).
func BenchmarkStateCount(b *testing.B) {
	touts := make([]int, 10)
	for i := range touts {
		touts[i] = 100
	}
	var v float64
	for i := 0; i < b.N; i++ {
		v = core.BasicStateCount(touts, 8)
	}
	b.ReportMetric(v, "states")
}

// BenchmarkBasicModelBuild explores and assembles the exact §IV-A chain
// for a small configuration (the scale at which it is tractable at all).
func BenchmarkBasicModelBuild(b *testing.B) {
	rs, err := rules.NewSet([]rules.Rule{
		{Cover: flows.SetOf(0), Priority: 3, Timeout: 3},
		{Cover: flows.SetOf(0, 1), Priority: 2, Timeout: 4},
		{Cover: flows.SetOf(2), Priority: 1, Timeout: 3},
	})
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{Rules: rs, Rates: []float64{0.8, 0.5, 0.9}, Delta: 0.2, CacheSize: 2}
	var states int
	for i := 0; i < b.N; i++ {
		m, err := core.NewBasicModel(cfg, 1<<20)
		if err != nil {
			b.Fatal(err)
		}
		states = m.NumStates()
	}
	b.ReportMetric(float64(states), "states")
}

// BenchmarkCompactModelBuildPaperScale assembles the §IV-B chain at the
// paper's evaluation scale: |Rules| = 12, n = 6 → 2510 subset states.
// The u-sum memo is primed by an untimed build first, so the reported
// time is the steady-state cost of the builds the pipeline actually
// repeats — the conditioned chain pair M/M₀, GainVsWindow sweeps, and
// the defense profiler all rebuild over a warm memo. See
// BenchmarkCompactModelBuildCold for the uncached first-build cost.
func BenchmarkCompactModelBuildPaperScale(b *testing.B) {
	rs, err := rules.Generate(rules.DefaultGenerateConfig(0.025), stats.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{Rules: rs, Rates: workloadRates(16, 2), Delta: 0.025, CacheSize: 6}
	params := core.USumParams{ExactLimit: 20000, MCSamples: 800, Seed: 1}
	core.ResetUSumMemo()
	if _, err := core.NewCompactModel(cfg, params); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var states int
	for i := 0; i < b.N; i++ {
		m, err := core.NewCompactModel(cfg, params)
		if err != nil {
			b.Fatal(err)
		}
		states = m.NumStates()
	}
	b.ReportMetric(float64(states), "states")
}

// BenchmarkCompactModelBuildCold is the uncached build number: the u-sum
// memo is reset every iteration, so each build pays the full transition
// estimation cost. BenchmarkCompactModelBuildPaperScale keeps the memo
// warm across iterations — the way repeated builds behave in practice
// (the conditioned chain pair, GainVsWindow, the defense profiler).
func BenchmarkCompactModelBuildCold(b *testing.B) {
	rs, err := rules.Generate(rules.DefaultGenerateConfig(0.025), stats.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{Rules: rs, Rates: workloadRates(16, 2), Delta: 0.025, CacheSize: 6}
	params := core.USumParams{ExactLimit: 20000, MCSamples: 800, Seed: 1}
	var states int
	for i := 0; i < b.N; i++ {
		core.ResetUSumMemo()
		m, err := core.NewCompactModel(cfg, params)
		if err != nil {
			b.Fatal(err)
		}
		states = m.NumStates()
	}
	b.ReportMetric(float64(states), "states")
}

// BenchmarkEvolve measures Eqn (8): I_T = Aᵀ I₀ over the paper's probe
// window (T = 600 steps at Δ = 25 ms).
func BenchmarkEvolve(b *testing.B) {
	rs, err := rules.Generate(rules.DefaultGenerateConfig(0.025), stats.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{Rules: rs, Rates: workloadRates(16, 2), Delta: 0.025, CacheSize: 6}
	m, err := core.NewCompactModel(cfg, core.USumParams{ExactLimit: 20000, MCSamples: 400, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	d0 := m.InitialDist()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Evolve(d0, 600)
	}
}

// BenchmarkProbeSelection measures single-probe information-gain search
// over every candidate flow (§V-A).
func BenchmarkProbeSelection(b *testing.B) {
	cfg := benchCoreConfig(b)
	sel, err := core.NewCompactSelector(cfg, 0, 20, core.DefaultUSumParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var gain float64
	for i := 0; i < b.N; i++ {
		best, ok := sel.Best(sel.AllFlows())
		if !ok {
			b.Fatal("no probe")
		}
		gain = best.Gain
	}
	b.ReportMetric(gain, "gain-bits")
}

// BenchmarkMultiProbeSelection measures the exhaustive two-probe search
// (§V-B).
func BenchmarkMultiProbeSelection(b *testing.B) {
	cfg := benchCoreConfig(b)
	sel, err := core.NewCompactSelector(cfg, 0, 20, core.DefaultUSumParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var gain float64
	for i := 0; i < b.N; i++ {
		best, ok := sel.BestSequence(sel.AllFlows(), 2)
		if !ok {
			b.Fatal("no sequence")
		}
		gain = best.Gain
	}
	b.ReportMetric(gain, "gain-bits")
}

// BenchmarkLatencyTable regenerates the §VI-A timing characterization:
// hit/miss RTT distributions through the simulated fabric and through the
// real-TCP OpenFlow pair, with the 1 ms threshold error rate.
func BenchmarkLatencyTable(b *testing.B) {
	var report *experiment.LatencyReport
	for i := 0; i < b.N; i++ {
		var err error
		report, err = experiment.MeasureLatency(300, 60, 5, 3900*time.Microsecond)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(report.SimHitMs.Mean, "hit-ms")
	b.ReportMetric(report.SimMissMs.Mean, "miss-ms")
	b.ReportMetric(100*report.SimMisclassified, "sim-miscls-%")
	b.ReportMetric(100*report.OFMisclassified, "of-miscls-%")
}

// runFig6 produces the Figure 6 data at bench scale.
func runFig6(b *testing.B) *experiment.Fig6Result {
	b.Helper()
	res, err := experiment.RunFig6(experiment.Fig6Options{
		Params:          benchParams(),
		Configs:         8,
		TrialsPerConfig: 60,
		MaxAttempts:     600,
		Seed:            3,
	})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkFig6a regenerates Figure 6a: model vs naive accuracy across
// target-absence buckets, over configurations where the optimal probe is
// not the target flow.
func BenchmarkFig6a(b *testing.B) {
	var res *experiment.Fig6Result
	for i := 0; i < b.N; i++ {
		res = runFig6(b)
	}
	b.ReportMetric(res.MeanModel, "model-acc")
	b.ReportMetric(res.MeanNaive, "naive-acc")
	b.ReportMetric(res.MeanModel-res.MeanNaive, "improvement")
}

// BenchmarkFig6b regenerates Figure 6b: the CDF of per-configuration
// additive improvement over the naive attacker.
func BenchmarkFig6b(b *testing.B) {
	var res *experiment.Fig6Result
	for i := 0; i < b.N; i++ {
		res = runFig6(b)
	}
	q := res.ImprovementQuantiles([]float64{0.05, 0.15})
	b.ReportMetric(100*q[0.05], "ge5pct-%configs")
	b.ReportMetric(100*q[0.15], "ge15pct-%configs")
}

// runFig7 produces the Figure 7 data at bench scale.
func runFig7(b *testing.B) *experiment.Fig7Result {
	b.Helper()
	res, err := experiment.RunFig7(experiment.Fig7Options{
		Params:          benchParams(),
		Configs:         8,
		TrialsPerConfig: 60,
		MaxAttempts:     600,
		Seed:            4,
	})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkFig7a regenerates Figure 7a: restricted-model vs naive vs
// random accuracy bucketed by the number of rules covering the target.
func BenchmarkFig7a(b *testing.B) {
	var res *experiment.Fig7Result
	for i := 0; i < b.N; i++ {
		res = runFig7(b)
	}
	model, naive, random := fig7Means(res)
	b.ReportMetric(model, "restricted-acc")
	b.ReportMetric(naive, "naive-acc")
	b.ReportMetric(random, "random-acc")
}

// BenchmarkFig7b regenerates Figure 7b: the same three attackers bucketed
// by target-absence probability.
func BenchmarkFig7b(b *testing.B) {
	var res *experiment.Fig7Result
	for i := 0; i < b.N; i++ {
		res = runFig7(b)
	}
	model, naive, random := fig7Means(res)
	b.ReportMetric(model-random, "model-vs-random")
	b.ReportMetric(model-naive, "model-vs-naive")
}

func fig7Means(res *experiment.Fig7Result) (model, naive, random float64) {
	n := float64(len(res.Outcomes))
	for _, o := range res.Outcomes {
		naive += o.Accuracy["naive"] / n
		random += o.Accuracy["random"] / n
		for name, acc := range o.Accuracy {
			if name != "naive" && name != "random" {
				model += acc / n
			}
		}
	}
	return model, naive, random
}

// --- Ablations (DESIGN.md §4) ---

// BenchmarkAblationUSum compares the exact enumeration and Monte Carlo
// estimation of the §IV-B u-sums on identical states.
func BenchmarkAblationUSum(b *testing.B) {
	cfg := benchCoreConfig(b)
	run := func(b *testing.B, params core.USumParams) {
		var m *core.CompactModel
		for i := 0; i < b.N; i++ {
			var err error
			m, err = core.NewCompactModel(cfg, params)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(100*m.ExactStateFraction(), "exact-%states")
	}
	b.Run("exact", func(b *testing.B) {
		run(b, core.USumParams{ExactLimit: 1 << 30, MCSamples: 1, Seed: 1})
	})
	b.Run("montecarlo", func(b *testing.B) {
		run(b, core.USumParams{ExactLimit: 0, MCSamples: 800, Seed: 1})
	})
}

// BenchmarkAblationDelta sweeps the model step Δ: smaller steps shrink the
// multi-arrival discretization error at the cost of a longer horizon.
func BenchmarkAblationDelta(b *testing.B) {
	for _, delta := range []float64{0.1, 0.05, 0.025} {
		b.Run(time.Duration(delta*float64(time.Second)).String(), func(b *testing.B) {
			rs, err := rules.Generate(rules.DefaultGenerateConfig(delta), stats.NewRNG(3))
			if err != nil {
				b.Fatal(err)
			}
			cfg := core.Config{Rules: rs, Rates: workloadRates(16, 4), Delta: delta, CacheSize: 6}
			steps := int(5.0 / delta)
			var hit float64
			for i := 0; i < b.N; i++ {
				m, err := core.NewCompactModel(cfg, core.USumParams{ExactLimit: 20000, MCSamples: 400, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				d := m.Evolve(m.InitialDist(), steps)
				hit = m.HitProbability(d, 0)
			}
			b.ReportMetric(hit, "P(hit-f0)")
		})
	}
}

// BenchmarkAblationOrderedVsCanonical measures the state-space cost of the
// paper's ordered cache states against the behaviour-equivalent canonical
// (order-merged) variant.
func BenchmarkAblationOrderedVsCanonical(b *testing.B) {
	rs, err := rules.NewSet([]rules.Rule{
		{Cover: flows.SetOf(0), Priority: 3, Timeout: 4},
		{Cover: flows.SetOf(0, 1), Priority: 2, Timeout: 5},
		{Cover: flows.SetOf(2), Priority: 1, Timeout: 4},
	})
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{Rules: rs, Rates: []float64{0.8, 0.5, 0.9}, Delta: 0.1, CacheSize: 2}
	b.Run("ordered", func(b *testing.B) {
		var states int
		for i := 0; i < b.N; i++ {
			m, err := core.NewBasicModel(cfg, 1<<21)
			if err != nil {
				b.Fatal(err)
			}
			states = m.NumStates()
		}
		b.ReportMetric(float64(states), "states")
	})
	b.Run("canonical", func(b *testing.B) {
		var states int
		for i := 0; i < b.N; i++ {
			m, err := core.NewBasicModelCanonical(cfg, 1<<21)
			if err != nil {
				b.Fatal(err)
			}
			states = m.NumStates()
		}
		b.ReportMetric(float64(states), "states")
	})
}

// BenchmarkAblationProbeCount compares the information gain of one vs two
// probes on the paper's Figure 2b structure, where the second probe
// genuinely disambiguates overlapping rules.
func BenchmarkAblationProbeCount(b *testing.B) {
	rs, err := rules.NewSet([]rules.Rule{
		{Name: "rule1", Cover: flows.SetOf(0), Priority: 2, Timeout: 6},
		{Name: "rule2", Cover: flows.SetOf(0, 1), Priority: 1, Timeout: 6},
	})
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{Rules: rs, Rates: []float64{0.3, 0.8}, Delta: 0.25, CacheSize: 2}
	sel, err := core.NewCompactSelector(cfg, 0, 20, core.DefaultUSumParams())
	if err != nil {
		b.Fatal(err)
	}
	var single, pair float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		single, pair = sel.SequenceGainAtLeastSingle(sel.AllFlows())
	}
	b.ReportMetric(single, "gain1-bits")
	b.ReportMetric(pair, "gain2-bits")
}

// BenchmarkTrialLoopRecording compares one full attack trial (traffic
// generation, table replay, probing, verdicts for the standard
// four-attacker roster) with forensics off (nil recorder — the per-probe
// observer is a nil pointer), with causal spans only, and with the
// complete JSONL recording (belief steps + spans) streamed to a discarded
// writer. "off" must track the uninstrumented trial loop within noise —
// the ISSUE's nil-recorder-is-free contract; the gap to "record" is the
// price of full forensics.
func BenchmarkTrialLoopRecording(b *testing.B) {
	spec := experiment.RecordingSpec{
		Params:      benchParams(),
		ConfigSeed:  11,
		TrialSeed:   13,
		Trials:      1,
		Probes:      2,
		Measurement: experiment.DefaultMeasurement(),
	}
	nc, err := spec.BuildConfig()
	if err != nil {
		b.Fatal(err)
	}
	attackers, err := experiment.StandardAttackers(nc, spec.Probes)
	if err != nil {
		b.Fatal(err)
	}
	trial := func(b *testing.B, opts experiment.TrialOptions) {
		b.Helper()
		if _, _, err := experiment.RunTrialsOpts(nc, attackers, 1, spec.Measurement, stats.NewRNG(spec.TrialSeed), opts); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			trial(b, experiment.TrialOptions{})
		}
	})
	b.Run("spans", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			trial(b, experiment.TrialOptions{Spans: telemetry.NewSpanRecorder(0)})
		}
	})
	b.Run("record", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rec, err := trialrec.NewRecorder(io.Discard, trialrec.Header{Trials: 1})
			if err != nil {
				b.Fatal(err)
			}
			trial(b, experiment.TrialOptions{Recorder: rec})
			if err := rec.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTrialLoopParallel runs the same 16-trial batch through the
// trial runner at increasing worker counts. Results are identical at
// every level (see internal/experiment/parallel_test.go); the deltas here
// are pure scheduling cost/benefit, so the benchmark doubles as a check
// that the deterministic fan-out machinery stays cheap on one core and a
// speedup probe on many.
func BenchmarkTrialLoopParallel(b *testing.B) {
	spec := experiment.RecordingSpec{
		Params:      benchParams(),
		ConfigSeed:  11,
		TrialSeed:   13,
		Trials:      16,
		Probes:      2,
		Measurement: experiment.DefaultMeasurement(),
	}
	nc, err := spec.BuildConfig()
	if err != nil {
		b.Fatal(err)
	}
	attackers, err := experiment.StandardAttackers(nc, spec.Probes)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(workerLabel(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := experiment.RunTrialsOpts(nc, attackers, spec.Trials, spec.Measurement,
					stats.NewRNG(spec.TrialSeed), experiment.TrialOptions{Parallelism: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func workerLabel(n int) string {
	return "workers=" + strconv.Itoa(n)
}

// --- Substrate benchmarks (ISSUE 5) ---

// churnRules builds a large rule set over a 1024-flow universe: one
// exact-match rule per flow at high priority (so 1024 distinct rules are
// installable and a capacity-512 table genuinely churns) plus 128
// overlapping low-priority ternary wildcards, timeouts 1–10 s at
// Δ = 50 ms. This is the regime the overflow-probing attacks of PAPERS.md
// hammer: the table runs at capacity and every miss evicts.
func churnRules(b *testing.B) *rules.Set {
	b.Helper()
	const nflows = 1024
	rng := stats.NewRNG(7)
	specs := make([]rules.Rule, 0, nflows+128)
	for f := 0; f < nflows; f++ {
		specs = append(specs, rules.Rule{
			Name:     "exact",
			Cover:    flows.SetOf(flows.ID(f)),
			Priority: 1 + 128 + f,
			Timeout:  20 * (1 + rng.Intn(10)), // 1..10 s at Δ = 50 ms
		})
	}
	masks := rules.AllTernaryMasks(10)
	rng.Shuffle(len(masks), func(i, j int) { masks[i], masks[j] = masks[j], masks[i] })
	added := 0
	for _, m := range masks {
		if added == 128 {
			break
		}
		cover := m.CoverOf(nflows)
		if cover.Empty() {
			continue
		}
		added++
		specs = append(specs, rules.Rule{
			Name:     m.String(),
			Cover:    cover,
			Priority: added,
			Timeout:  20 * (1 + rng.Intn(10)),
		})
	}
	rs, err := rules.NewSet(specs)
	if err != nil {
		b.Fatal(err)
	}
	return rs
}

// BenchmarkTableChurn drives a capacity-512 flow table with Poisson
// arrivals over 1024 flows: every op is a Lookup plus, on a miss, the
// reactive Install of the covering rule (evicting at capacity). ns/op is
// the per-arrival cost of the simulation substrate's switch model.
func BenchmarkTableChurn(b *testing.B) {
	rs := churnRules(b)
	const nflows = 1024
	// Pre-draw the arrival process so the timed loop measures only the
	// table: exponential inter-arrivals at 2000 pkt/s over uniform flows.
	rng := stats.NewRNG(11)
	const window = 1 << 14
	arrFlow := make([]flows.ID, window)
	arrGap := make([]float64, window)
	for i := range arrFlow {
		arrFlow[i] = flows.ID(rng.Intn(nflows))
		arrGap[i] = rng.Exp(2000)
	}
	tbl, err := flowtable.New(rs, 512, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	now := 0.0
	// Warm the table to capacity before timing.
	for i := 0; i < window; i++ {
		now += arrGap[i]
		if _, hit := tbl.Lookup(arrFlow[i], now); !hit {
			if j, ok := rs.HighestCovering(arrFlow[i]); ok {
				tbl.Install(j, now)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i & (window - 1)
		now += arrGap[k]
		f := arrFlow[k]
		if _, hit := tbl.Lookup(f, now); !hit {
			if j, ok := rs.HighestCovering(f); ok {
				tbl.Install(j, now)
			}
		}
	}
	b.ReportMetric(float64(tbl.Len(now)), "occupancy")
}

// BenchmarkRuleMatch measures Set.MatchIn against a fixed cached set on
// the large wildcard universe — the per-packet matching cost inside
// Table.Lookup and the Markov models' transition builders.
func BenchmarkRuleMatch(b *testing.B) {
	rs := churnRules(b)
	cached := make([]bool, rs.Len())
	rng := stats.NewRNG(13)
	for i := 0; i < 512; i++ {
		cached[rng.Intn(rs.Len())] = true
	}
	pred := func(j int) bool { return cached[j] }
	b.ReportAllocs()
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		if _, ok := rs.MatchIn(flows.ID(i&1023), pred); ok {
			hits++
		}
	}
	b.ReportMetric(100*float64(hits)/float64(b.N), "hit-%")
}

// BenchmarkSimScheduler measures the netsim event loop in steady state:
// each iteration schedules four events at staggered future times and
// drains them — the schedule/dispatch cycle every simulated packet pays
// per hop. allocs/op is the headline number: the scheduler must not
// allocate once warm.
func BenchmarkSimScheduler(b *testing.B) {
	s := netsim.NewSim()
	n := 0
	fn := func() { n++ }
	// Warm the internal storage.
	for i := 0; i < 1024; i++ {
		s.After(float64(i)*1e-6, fn)
	}
	s.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := s.Now()
		s.At(at+3e-6, fn)
		s.At(at+1e-6, fn)
		s.At(at+2e-6, fn)
		s.At(at+1e-6, fn)
		s.Run()
	}
	if n == 0 {
		b.Fatal("no events ran")
	}
}

// BenchmarkDetectorObserve measures the defender's hot path: one
// controller-path observation through the streaming detector (window
// ring-bucket rotation, gap EWMA/Welford update, log-bucket sketch
// insert, scoring). allocs/op is the headline: 0 in steady state — a
// source's first observation allocates its state, nothing after (the
// alloc-gate enforces this in internal/detect). The "nil" variant is the
// disabled detector: every call sites' cost when no defender runs must
// be a single nil check.
func BenchmarkDetectorObserve(b *testing.B) {
	b.Run("enabled", func(b *testing.B) {
		d := detect.New(detect.DefaultConfig())
		for s := 0; s < 8; s++ {
			d.Observe(s, 0, 1.0, true)
		}
		b.ReportAllocs()
		b.ResetTimer()
		t := 0.0
		for i := 0; i < b.N; i++ {
			t += 0.37
			d.Observe(i&7, t, 1.0, i&1 == 0)
		}
	})
	b.Run("nil", func(b *testing.B) {
		var d *detect.Detector
		b.ReportAllocs()
		b.ResetTimer()
		t := 0.0
		for i := 0; i < b.N; i++ {
			t += 0.37
			d.Observe(i&7, t, 1.0, true)
		}
	})
}

// BenchmarkTelemetryOverhead compares the flow table's hot path
// (Lookup + Install on miss) with telemetry disabled (nil registry — the
// instruments are nil pointers, each call one nil check), enabled, and
// enabled with tracing. Disabled must track the uninstrumented baseline
// within noise (~5%); the ISSUE's zero-overhead-when-off contract.
func BenchmarkTelemetryOverhead(b *testing.B) {
	mkTable := func(b *testing.B) (*flowtable.Table, *rules.Set) {
		rs, err := rules.NewSet([]rules.Rule{
			{Name: "rule1", Cover: flows.SetOf(0), Priority: 3, Timeout: 4},
			{Name: "rule2", Cover: flows.SetOf(0, 1), Priority: 2, Timeout: 10},
			{Name: "rule3", Cover: flows.SetOf(2), Priority: 1, Timeout: 7},
		})
		if err != nil {
			b.Fatal(err)
		}
		tbl, err := flowtable.New(rs, 2, 1)
		if err != nil {
			b.Fatal(err)
		}
		return tbl, rs
	}
	run := func(b *testing.B, tbl *flowtable.Table, rs *rules.Set) {
		now := 0.0
		for i := 0; i < b.N; i++ {
			now += 0.37
			f := flows.ID(i % 3)
			if _, hit := tbl.Lookup(f, now); !hit {
				if j, ok := rs.HighestCovering(f); ok {
					tbl.Install(j, now)
				}
			}
		}
	}
	b.Run("disabled", func(b *testing.B) {
		tbl, rs := mkTable(b)
		// No SetTelemetry: all instruments are nil.
		b.ResetTimer()
		run(b, tbl, rs)
	})
	b.Run("enabled", func(b *testing.B) {
		tbl, rs := mkTable(b)
		tbl.SetTelemetry(telemetry.NewRegistry(0), "bench")
		b.ResetTimer()
		run(b, tbl, rs)
	})
	b.Run("enabled+trace", func(b *testing.B) {
		tbl, rs := mkTable(b)
		tbl.SetTelemetry(telemetry.NewRegistry(4096), "bench")
		b.ResetTimer()
		run(b, tbl, rs)
	})
}

// fleetBenchSetup is the shared 1k-switch workload: a k=30 fat-tree
// (1125 switches), 64 hosts spread across the edge tier, and 64 flows
// chained host i → host i+1 so most traffic crosses pods (and therefore
// shards). Eight rules of eight flows each keep the reactive edges busy
// without overflowing the tables.
type fleetBenchSetup struct {
	topo     netsim.Topology
	universe *flows.Universe
	policy   *rules.Set
	hostSw   []string // edge switch of host i
	hostName []string // interned so the hot loop does no string building
	hostIP   []flows.IPv4
}

const fleetBenchHosts = 64

func newFleetBenchSetup(b *testing.B) *fleetBenchSetup {
	b.Helper()
	topo, err := netsim.FatTree(30) // 1125 switches — the "1k" fabric
	if err != nil {
		b.Fatal(err)
	}
	s := &fleetBenchSetup{topo: topo, universe: flows.NewUniverse()}
	base := flows.MakeIPv4(10, 16, 0, 0)
	for i := 0; i < fleetBenchHosts; i++ {
		// Stride the edge tier so consecutive hosts land in different pods.
		s.hostSw = append(s.hostSw, topo.Edges[(i*7)%len(topo.Edges)])
		s.hostName = append(s.hostName, "bh"+strconv.Itoa(i))
		s.hostIP = append(s.hostIP, base+flows.IPv4(i))
	}
	rs := make([]rules.Rule, 8)
	for r := range rs {
		ids := make([]flows.ID, 0, 8)
		for i := 0; i < 8; i++ {
			ids = append(ids, flows.ID(r*8+i))
		}
		rs[r] = rules.Rule{Name: "rb" + strconv.Itoa(r), Cover: flows.SetOf(ids...), Priority: r + 1, Timeout: 50}
	}
	for i := 0; i < fleetBenchHosts; i++ {
		s.universe.Add("bf"+strconv.Itoa(i), flows.FiveTuple{
			Src: s.hostIP[i], Dst: s.hostIP[(i+1)%fleetBenchHosts], Proto: flows.ProtoICMP,
		})
	}
	s.policy, err = rules.NewSet(rs)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkShardedSim1k drives one echo round (64 cross-pod packets,
// ~14 events each) through the 1125-switch fat-tree and reports
// events/sec. Sub-benchmarks compare the sharded fleet engine at 1 and 8
// shards against the legacy per-closure serial engine on the identical
// topology and workload — the fleet engine's compiled routes and pooled
// event records are where the fleet-scale speedup comes from; on a
// multi-core host the 8-shard variant additionally spreads the window
// drains over the worker pool (see EXPERIMENTS.md §16 for the
// single-core caveat). allocs/op for the fleet variants is the headline:
// 0 in steady state, enforced by the alloc-gate.
func BenchmarkShardedSim1k(b *testing.B) {
	s := newFleetBenchSetup(b)
	round := func(send func(src, dst string, at float64), now float64) {
		for h := 0; h < fleetBenchHosts; h++ {
			send(s.hostName[h], s.hostName[(h+1)%fleetBenchHosts], now+float64(h)*2e-5)
		}
	}
	for _, cfg := range []struct {
		name            string
		shards, workers int
	}{
		{"fleet/shards=1", 1, 1},
		{"fleet/shards=8", 8, 0},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			f, err := netsim.NewFleet(netsim.FleetConfig{
				Topo:     s.topo,
				Capacity: 16,
				StepSec:  0.1,
				Ctrl:     netsim.NewControllerModel(s.policy, controller.Options{}),
				Universe: s.universe,
				Shards:   cfg.shards,
				Workers:  cfg.workers,
				Seed:     7,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer f.Close()
			for i := 0; i < fleetBenchHosts; i++ {
				if err := f.AddHost(s.hostName[i], s.hostIP[i], s.hostSw[i]); err != nil {
					b.Fatal(err)
				}
				if err := f.SetReactive(s.hostSw[i]); err != nil {
					b.Fatal(err)
				}
			}
			send := func(src, dst string, at float64) {
				if _, err := f.SendEcho(src, dst, at); err != nil {
					b.Fatal(err)
				}
			}
			// Warm routes, heaps, and the packet arena.
			round(send, 0)
			f.Run()
			b.ReportAllocs()
			b.ResetTimer()
			events := 0
			for i := 0; i < b.N; i++ {
				round(send, f.Now())
				events += f.Run()
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
		})
	}
	b.Run("legacy-serial", func(b *testing.B) {
		sim := netsim.NewSim()
		n := netsim.NewNetwork(sim, s.universe, netsim.NewControllerModel(s.policy, controller.Options{}), netsim.DefaultLatencyModel(), stats.NewRNG(7))
		if err := s.topo.Build(n, 16, 0.1); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < fleetBenchHosts; i++ {
			if err := n.AddHost(s.hostName[i], s.hostIP[i], s.hostSw[i]); err != nil {
				b.Fatal(err)
			}
			if err := n.SetReactive(s.hostSw[i], true); err != nil {
				b.Fatal(err)
			}
		}
		send := func(src, dst string, at float64) {
			if _, err := n.SendEcho(src, dst, at); err != nil {
				b.Fatal(err)
			}
		}
		round(send, 0)
		sim.Run()
		b.ReportAllocs()
		b.ResetTimer()
		events := 0
		for i := 0; i < b.N; i++ {
			round(send, sim.Now())
			events += sim.Run()
		}
		b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
	})
}

// BenchmarkIngestPcap measures the full ingestion pipeline on an
// in-memory ~10k-packet capture: pcap decode (header + Ethernet/IPv4/
// transport parse per record), flow extraction with the lazy expiry
// heap, and the per-source universe mapping. ns/op is the per-capture
// cost; MB/s puts it in packets-on-disk terms. The Capture and
// Extractor are reused across iterations (ReadPcapInto + Observe/Flush),
// the steady-state shape of a daemon replaying many captures — per-op
// heap traffic is the trace build plus map/slab growth to the flow peak,
// not a fresh multi-megabyte packet slice per file.
func BenchmarkIngestPcap(b *testing.B) {
	rng := stats.NewRNG(17)
	const npkts = 10000
	pkts := make([]ingest.Packet, npkts)
	now := 0.0
	for i := range pkts {
		now += rng.Exp(500) // 500 pkt/s
		src := flows.MakeIPv4(10, 0, 0, byte(1+rng.Intn(32)))
		dst := flows.MakeIPv4(10, 1, 0, byte(1+rng.Intn(32)))
		pkts[i] = ingest.Packet{
			Time:  now,
			Key:   ingest.MakeKey(src, dst, flows.ProtoTCP, uint16(1024+rng.Intn(4096)), 443),
			Bytes: 64 + rng.Intn(1400),
		}
	}
	var buf bytes.Buffer
	if err := ingest.WritePcap(&buf, pkts, ingest.WriteOptions{LittleEndian: true}); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	var classes int
	var capt ingest.Capture
	ex := ingest.NewExtractor(0, 0)
	for i := 0; i < b.N; i++ {
		if err := ingest.ReadPcapInto(bytes.NewReader(raw), &capt); err != nil {
			b.Fatal(err)
		}
		for _, p := range capt.Packets {
			if err := ex.Observe(p); err != nil {
				b.Fatal(err)
			}
		}
		res, err := ingest.BuildTrace(ex.Flush(), ingest.TraceOptions{})
		if err != nil {
			b.Fatal(err)
		}
		classes = res.Universe.Size()
	}
	b.ReportMetric(float64(classes), "classes")
}
